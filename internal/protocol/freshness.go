package protocol

// Pure freshness predicates (§4.2). The prover-side *state* (last counter,
// nonce history, clock reading) lives in protected MCU memory and is
// managed by the trust anchor; the decision logic is here so both sides of
// the protocol — and the tests — share one definition.

// CounterFresh reports whether a request counter is acceptable given the
// last processed counter: strictly greater, per §4.2 ("the prover accepts
// a new request only if its counter is strictly greater than the last one
// received and processed"). Duplicates and reordered (stale) counters are
// rejected; arbitrary delay is NOT detected — the gap Adv_roam exploits.
func CounterFresh(last, req uint64) bool { return req > last }

// TimestampFresh reports whether a request timestamp is acceptable against
// the prover's clock reading now (both in prover-clock milliseconds):
// the request must be no older than window and no further in the future
// than skew (to tolerate clock disagreement without accepting requests
// "from the future", which would let an adversary pre-date a recorded
// request). A window shorter than the adversary's replay delay δ is what
// defeats delayed-replay (§4.2, §5).
func TimestampFresh(now, ts, window, skew uint64) bool {
	if ts > now {
		return ts-now <= skew
	}
	return now-ts <= window
}

// NonceHistory is the §4.2 nonce mechanism: the prover keeps the set of
// nonces it has already processed and rejects repeats. The paper's
// critique is twofold: a complete history needs unbounded non-volatile
// memory, and nonces detect only replays (reordered or delayed genuine
// requests carry unseen nonces and are accepted). This implementation
// bounds the history at a capacity; once it overflows, the oldest entries
// are evicted and replays of evicted nonces become undetectable —
// quantifying the paper's memory argument.
type NonceHistory struct {
	capacity int
	order    []uint64
	seen     map[uint64]bool
	// Evictions counts history entries lost to the capacity bound.
	Evictions uint64
}

// NewNonceHistory bounds the history at capacity entries (≥1).
func NewNonceHistory(capacity int) *NonceHistory {
	if capacity < 1 {
		capacity = 1
	}
	return &NonceHistory{capacity: capacity, seen: make(map[uint64]bool)}
}

// Check reports whether nonce is fresh (unseen) and, when fresh, records
// it — evicting the oldest entry if the history is full.
func (h *NonceHistory) Check(nonce uint64) bool {
	if h.seen[nonce] {
		return false
	}
	if len(h.order) == h.capacity {
		oldest := h.order[0]
		h.order = h.order[1:]
		delete(h.seen, oldest)
		h.Evictions++
	}
	h.order = append(h.order, nonce)
	h.seen[nonce] = true
	return true
}

// Len reports the number of remembered nonces.
func (h *NonceHistory) Len() int { return len(h.order) }

// BytesRequired reports the non-volatile memory a history of n 64-bit
// nonces occupies — the quantity the paper cites when ruling the
// mechanism out for low-end provers.
func BytesRequired(n int) int { return 8 * n }
