package protocol

import (
	"testing"
	"testing/quick"
)

func TestCounterFresh(t *testing.T) {
	if !CounterFresh(0, 1) {
		t.Error("first counter rejected")
	}
	if CounterFresh(5, 5) {
		t.Error("duplicate counter accepted (replay)")
	}
	if CounterFresh(5, 4) {
		t.Error("stale counter accepted (reorder)")
	}
	if !CounterFresh(5, 100) {
		t.Error("gap in counters rejected — gaps are legitimate (lost requests)")
	}
}

func TestCounterFreshQuick(t *testing.T) {
	f := func(last, req uint64) bool {
		return CounterFresh(last, req) == (req > last)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampFresh(t *testing.T) {
	const window, skew = 1000, 50
	cases := []struct {
		name    string
		now, ts uint64
		want    bool
	}{
		{"current", 10_000, 10_000, true},
		{"recent", 10_000, 9_500, true},
		{"window edge", 10_000, 9_000, true},
		{"just expired", 10_000, 8_999, false},
		{"long delay (the delay attack)", 10_000, 1_000, false},
		{"slight future (clock skew)", 10_000, 10_040, true},
		{"future beyond skew", 10_000, 10_051, false},
		{"zero now", 0, 0, true},
	}
	for _, tc := range cases {
		if got := TimestampFresh(tc.now, tc.ts, window, skew); got != tc.want {
			t.Errorf("%s: TimestampFresh(%d, %d) = %v, want %v", tc.name, tc.now, tc.ts, got, tc.want)
		}
	}
}

func TestTimestampFreshNoUnderflow(t *testing.T) {
	// ts ≫ now must not wrap the unsigned subtraction into acceptance.
	if TimestampFresh(100, ^uint64(0), 1000, 50) {
		t.Fatal("huge future timestamp accepted (underflow)")
	}
	if TimestampFresh(^uint64(0), 100, 1000, 50) {
		t.Fatal("ancient timestamp accepted at huge now")
	}
}

func TestNonceHistoryDetectsReplay(t *testing.T) {
	h := NewNonceHistory(16)
	if !h.Check(42) {
		t.Fatal("fresh nonce rejected")
	}
	if h.Check(42) {
		t.Fatal("replayed nonce accepted")
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
}

func TestNonceHistoryAcceptsReorderAndDelay(t *testing.T) {
	// The paper's Table 2: nonces do NOT mitigate reorder or delay —
	// a held-back genuine request carries an unseen nonce.
	h := NewNonceHistory(16)
	// Requests 1 and 2 issued; adversary delivers 2 first, then 1.
	if !h.Check(2) {
		t.Fatal("reordered request rejected — nonces cannot detect reordering")
	}
	if !h.Check(1) {
		t.Fatal("late (delayed) request rejected — nonces cannot detect delay")
	}
}

func TestNonceHistoryEviction(t *testing.T) {
	h := NewNonceHistory(3)
	for n := uint64(1); n <= 4; n++ {
		if !h.Check(n) {
			t.Fatalf("fresh nonce %d rejected", n)
		}
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", h.Len())
	}
	if h.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", h.Evictions)
	}
	// Nonce 1 was evicted: its replay is now undetectable — the paper's
	// bounded-memory argument made concrete.
	if !h.Check(1) {
		t.Fatal("replay of evicted nonce was detected — eviction not modeled")
	}
	// Recent nonces are still remembered.
	if h.Check(4) {
		t.Fatal("replay of remembered nonce accepted")
	}
}

func TestNonceHistoryMinimumCapacity(t *testing.T) {
	h := NewNonceHistory(0)
	if !h.Check(1) || h.Check(1) {
		t.Fatal("capacity-clamped history misbehaves")
	}
}

func TestNonceHistoryNeverExceedsCapacity(t *testing.T) {
	f := func(nonces []uint64) bool {
		h := NewNonceHistory(8)
		for _, n := range nonces {
			h.Check(n)
		}
		return h.Len() <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesRequired(t *testing.T) {
	// One nonce per request, one request per minute, one-year deployment:
	// the paper's "a lot of non-volatile memory".
	perYear := 60 * 24 * 365
	if got := BytesRequired(perYear); got != 8*perYear {
		t.Fatalf("BytesRequired = %d, want %d", got, 8*perYear)
	}
	if BytesRequired(perYear) < 4*1024*1024 {
		t.Fatal("a year of minute-granularity nonces should exceed 4 MB — the point of §4.2")
	}
}
