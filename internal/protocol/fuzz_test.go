package protocol

import (
	"bytes"
	"testing"
)

// FuzzDecodeAttReq: the request decoder must never panic, and any frame it
// accepts must re-encode to the identical bytes (strict framing means the
// parse is a bijection on its accepted set).
func FuzzDecodeAttReq(f *testing.F) {
	f.Add((&AttReq{Freshness: FreshCounter, Auth: AuthHMACSHA1, Nonce: 1, Counter: 2,
		Tag: bytes.Repeat([]byte{0xAA}, 20)}).Encode())
	f.Add((&AttReq{}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0x41, 0x52, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeAttReq(data)
		if err != nil {
			return
		}
		if !bytes.Equal(req.Encode(), data) {
			t.Fatalf("accepted frame does not round trip: %x", data)
		}
	})
}

// FuzzDecodeAttResp mirrors the request fuzzer for responses.
func FuzzDecodeAttResp(f *testing.F) {
	f.Add((&AttResp{Nonce: 3, Counter: 4}).Encode())
	f.Add([]byte{0x41, 0x50})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeAttResp(data)
		if err != nil {
			return
		}
		if !bytes.Equal(resp.Encode(), data) {
			t.Fatalf("accepted response does not round trip: %x", data)
		}
	})
}

// FuzzDecodeCommandReq covers the variable-length command envelope.
func FuzzDecodeCommandReq(f *testing.F) {
	f.Add((&CommandReq{Kind: CmdSecureUpdate, Body: []byte("body"),
		Tag: bytes.Repeat([]byte{1}, 20)}).Encode())
	f.Add((&CommandReq{}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeCommandReq(data)
		if err != nil {
			return
		}
		if !bytes.Equal(req.Encode(), data) {
			t.Fatalf("accepted command does not round trip: %x", data)
		}
	})
}

// FuzzDecodeCommandResp covers the sealed verdict envelope.
func FuzzDecodeCommandResp(f *testing.F) {
	seeded := &CommandResp{Kind: CmdSecureErase, Status: StatusOK, Nonce: 7, Body: []byte("x")}
	seeded.Seal([]byte("k"))
	f.Add(seeded.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeCommandResp(data)
		if err != nil {
			return
		}
		if !bytes.Equal(resp.Encode(), data) {
			t.Fatalf("accepted command response does not round trip: %x", data)
		}
	})
}

// FuzzDecodeHello covers the session opener of the networked deployment.
func FuzzDecodeHello(f *testing.F) {
	f.Add((&Hello{Freshness: FreshCounter, Auth: AuthHMACSHA1, DeviceID: "dev-1"}).Encode())
	f.Add((&Hello{DeviceID: "x"}).Encode())
	f.Add([]byte{0x41, 0x48, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(data)
		if err != nil {
			return
		}
		if !bytes.Equal(h.Encode(), data) {
			t.Fatalf("accepted hello does not round trip: %x", data)
		}
	})
}

// FuzzDecodeStatsReport covers the counter-snapshot frame.
func FuzzDecodeStatsReport(f *testing.F) {
	f.Add((&StatsReport{Received: 7, Measurements: 1}).Encode())
	f.Add((&StatsReport{}).Encode())
	f.Add([]byte{0x41, 0x53})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeStatsReport(data)
		if err != nil {
			return
		}
		if !bytes.Equal(s.Encode(), data) {
			t.Fatalf("accepted stats report does not round trip: %x", data)
		}
	})
}

// FuzzDecodeSwarmReq: the swarm broadcast-request decoder must never
// panic, and any frame it accepts must re-encode byte-identically (the
// parse is a bijection on its accepted set) — same hostile-bytes
// treatment as AttReq.
func FuzzDecodeSwarmReq(f *testing.F) {
	signed := &SwarmReq{OwnOnly: true, Root: 3, Nonce: 1, TreeID: 2}
	signed.Sign([]byte("fuzz-swarm-key"))
	f.Add(signed.Encode())
	f.Add((&SwarmReq{}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0x41, 0x57, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSwarmReq(data)
		if err != nil {
			return
		}
		if !bytes.Equal(req.Encode(), data) {
			t.Fatalf("accepted swarm request does not round trip: %x", data)
		}
		var into SwarmReq
		if err := DecodeSwarmReqInto(data, &into); err != nil {
			t.Fatalf("DecodeSwarmReqInto rejects what DecodeSwarmReq accepts: %x", data)
		}
		if !bytes.Equal(into.Encode(), data) {
			t.Fatalf("decode-into swarm request does not round trip: %x", data)
		}
	})
}

// FuzzDecodeSwarmResp mirrors the request fuzzer for aggregate responses,
// including the variable-length presence bitmap.
func FuzzDecodeSwarmResp(f *testing.F) {
	resp := &SwarmResp{Depth: 2, Root: 1, Nonce: 9, Bitmap: []byte{0xFF, 0x01}}
	f.Add(resp.Encode())
	f.Add((&SwarmResp{}).Encode())
	f.Add([]byte{0x41, 0x56})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeSwarmResp(data)
		if err != nil {
			return
		}
		if !bytes.Equal(r.Encode(), data) {
			t.Fatalf("accepted swarm response does not round trip: %x", data)
		}
		var into SwarmResp
		if err := DecodeSwarmRespInto(data, &into); err != nil {
			t.Fatalf("DecodeSwarmRespInto rejects what DecodeSwarmResp accepts: %x", data)
		}
		if !bytes.Equal(into.Encode(), data) {
			t.Fatalf("decode-into swarm response does not round trip: %x", data)
		}
	})
}
