// Package protocol implements the attestation protocol between verifier
// (Vrf) and prover (Prv): the wire format of attestation requests and
// responses, the request-authentication schemes the paper compares in §4.1
// (none, HMAC-SHA1, AES-CBC-MAC, Speck-CBC-MAC, ECDSA/secp160r1), the
// freshness mechanisms of §4.2 (nonce history, monotonic counter,
// timestamp), and the verifier implementation. The prover side of the
// protocol runs inside the trust anchor (internal/anchor) on the simulated
// MCU.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"

	"proverattest/internal/crypto/sha1"
)

// FreshnessKind selects the anti-replay mechanism carried in requests.
type FreshnessKind uint8

// Freshness mechanisms (§4.2).
const (
	FreshNone FreshnessKind = iota
	FreshNonceHistory
	FreshCounter
	FreshTimestamp
)

func (k FreshnessKind) String() string {
	switch k {
	case FreshNone:
		return "none"
	case FreshNonceHistory:
		return "nonces"
	case FreshCounter:
		return "counter"
	case FreshTimestamp:
		return "timestamps"
	}
	return fmt.Sprintf("freshness(%d)", uint8(k))
}

// AuthKind selects the request-authentication scheme.
type AuthKind uint8

// Request-authentication schemes (§4.1).
const (
	AuthNone AuthKind = iota
	AuthHMACSHA1
	AuthAESCBCMAC
	AuthSpeckCBCMAC
	AuthECDSA
)

func (k AuthKind) String() string {
	switch k {
	case AuthNone:
		return "none"
	case AuthHMACSHA1:
		return "hmac-sha1"
	case AuthAESCBCMAC:
		return "aes-128-cbc-mac"
	case AuthSpeckCBCMAC:
		return "speck-64/128-cbc-mac"
	case AuthECDSA:
		return "ecdsa-secp160r1"
	}
	return fmt.Sprintf("auth(%d)", uint8(k))
}

// AttReq is a verifier→prover attestation request.
//
// Wire layout (little-endian):
//
//	offset 0  magic   0x41 'A' 0x52 'R' (attreq)
//	offset 2  version 1
//	offset 3  freshness kind
//	offset 4  auth kind
//	offset 5  flags (bit0 = fast path permitted; other bits reserved, zero)
//	offset 6  reserved (2 bytes, zero)
//	offset 8  nonce      (8 bytes)
//	offset 16 counter    (8 bytes)
//	offset 24 timestamp  (8 bytes, prover-clock milliseconds)
//	offset 32 tag length (2 bytes)
//	offset 34 tag        (variable)
type AttReq struct {
	Freshness FreshnessKind
	Auth      AuthKind
	// AllowFast permits the prover to answer with the O(1) fast-path MAC
	// when its write monitor reports the measured memory clean. The flag
	// sits inside SignedBytes, so a middleman cannot grant (or strip) the
	// permission without breaking the request tag.
	AllowFast bool
	Nonce     uint64
	Counter   uint64
	Timestamp uint64
	Tag       []byte
}

const (
	reqMagic0     = 0x41
	reqMagic1     = 0x52
	reqVersion    = 1
	reqHeaderSize = 34
	maxTagSize    = 64

	// reqFlagAllowFast marks a request whose issuer accepts the O(1)
	// fast-path response. Encoders predating the flag emit zero here, so
	// the wire format is unchanged for full-MAC-only deployments.
	reqFlagAllowFast = 1 << 0
)

// SignedBytes returns the authenticated portion of the request: the full
// header with the tag-length field zeroed and the tag absent. The
// freshness fields are inside the MAC, so an adversary cannot splice a
// fresh counter onto a recorded tag.
func (r *AttReq) SignedBytes() []byte {
	buf := make([]byte, reqHeaderSize)
	r.encodeHeader(buf, 0)
	return buf
}

// AppendSignedBytes appends the authenticated portion to dst, allocating
// only when dst lacks capacity — the fast-path MAC absorbs the signed
// header per frame and must not generate garbage doing so.
func (r *AttReq) AppendSignedBytes(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, reqHeaderSize)...)
	r.encodeHeader(dst[off:], 0)
	return dst
}

func (r *AttReq) encodeHeader(buf []byte, tagLen int) {
	buf[0] = reqMagic0
	buf[1] = reqMagic1
	buf[2] = reqVersion
	buf[3] = byte(r.Freshness)
	buf[4] = byte(r.Auth)
	buf[5] = 0
	if r.AllowFast {
		buf[5] = reqFlagAllowFast
	}
	buf[6], buf[7] = 0, 0
	binary.LittleEndian.PutUint64(buf[8:], r.Nonce)
	binary.LittleEndian.PutUint64(buf[16:], r.Counter)
	binary.LittleEndian.PutUint64(buf[24:], r.Timestamp)
	binary.LittleEndian.PutUint16(buf[32:], uint16(tagLen))
}

// AppendEncode appends the serialised request to dst and returns the
// extended slice. It allocates only when dst lacks capacity, so hot paths
// can reuse one scratch buffer across frames.
func (r *AttReq) AppendEncode(dst []byte) []byte {
	if len(r.Tag) > maxTagSize {
		panic(fmt.Sprintf("protocol: tag length %d exceeds maximum %d", len(r.Tag), maxTagSize))
	}
	off := len(dst)
	dst = append(dst, make([]byte, reqHeaderSize)...)
	r.encodeHeader(dst[off:], len(r.Tag))
	return append(dst, r.Tag...)
}

// Encode serialises the request.
func (r *AttReq) Encode() []byte {
	return r.AppendEncode(make([]byte, 0, reqHeaderSize+len(r.Tag)))
}

// DecodeAttReq parses a request, validating framing strictly: a malformed
// request must be rejected before any cryptography runs.
func DecodeAttReq(buf []byte) (*AttReq, error) {
	if len(buf) < reqHeaderSize {
		return nil, fmt.Errorf("protocol: request too short (%d bytes)", len(buf))
	}
	if buf[0] != reqMagic0 || buf[1] != reqMagic1 {
		return nil, fmt.Errorf("protocol: bad request magic %#x %#x", buf[0], buf[1])
	}
	if buf[2] != reqVersion {
		return nil, fmt.Errorf("protocol: unsupported request version %d", buf[2])
	}
	// Undefined flag bits and reserved bytes must be zero: they are zero
	// in the authenticated re-encoding, so tolerating junk here would open
	// an unauthenticated covert channel through otherwise-valid frames.
	if buf[5]&^reqFlagAllowFast != 0 || buf[6] != 0 || buf[7] != 0 {
		return nil, fmt.Errorf("protocol: nonzero reserved bytes in request header")
	}
	tagLen := int(binary.LittleEndian.Uint16(buf[32:]))
	if tagLen > maxTagSize {
		return nil, fmt.Errorf("protocol: tag length %d exceeds maximum %d", tagLen, maxTagSize)
	}
	if len(buf) != reqHeaderSize+tagLen {
		return nil, fmt.Errorf("protocol: request length %d does not match tag length %d", len(buf), tagLen)
	}
	r := &AttReq{
		Freshness: FreshnessKind(buf[3]),
		Auth:      AuthKind(buf[4]),
		AllowFast: buf[5]&reqFlagAllowFast != 0,
		Nonce:     binary.LittleEndian.Uint64(buf[8:]),
		Counter:   binary.LittleEndian.Uint64(buf[16:]),
		Timestamp: binary.LittleEndian.Uint64(buf[24:]),
	}
	if tagLen > 0 {
		r.Tag = append([]byte(nil), buf[reqHeaderSize:reqHeaderSize+tagLen]...)
	}
	return r, nil
}

// Static request-decode errors for DecodeAttReqInto, pre-allocated so the
// prover-side fast path can reject malformed frames without garbage.
var (
	errReqLength   = errors.New("protocol: bad request length")
	errReqMagic    = errors.New("protocol: bad request magic")
	errReqVersion  = errors.New("protocol: unsupported request version")
	errReqReserved = errors.New("protocol: nonzero reserved bytes in request header")
	errReqTagLen   = errors.New("protocol: bad request tag length")
)

// DecodeAttReqInto parses a request into r without allocating beyond r's
// own tag buffer, which is reused across calls (append into r.Tag[:0]).
// It applies the same strict framing as DecodeAttReq with static errors;
// r is fully overwritten on success and unspecified on failure. This is
// the host-prover (cmd/attest-loadgen) half of the zero-allocation fast
// path; the simulated anchor decodes inside the MCU instead.
func DecodeAttReqInto(buf []byte, r *AttReq) error {
	if len(buf) < reqHeaderSize {
		return errReqLength
	}
	if buf[0] != reqMagic0 || buf[1] != reqMagic1 {
		return errReqMagic
	}
	if buf[2] != reqVersion {
		return errReqVersion
	}
	if buf[5]&^reqFlagAllowFast != 0 || buf[6] != 0 || buf[7] != 0 {
		return errReqReserved
	}
	tagLen := int(binary.LittleEndian.Uint16(buf[32:]))
	if tagLen > maxTagSize || len(buf) != reqHeaderSize+tagLen {
		return errReqTagLen
	}
	r.Freshness = FreshnessKind(buf[3])
	r.Auth = AuthKind(buf[4])
	r.AllowFast = buf[5]&reqFlagAllowFast != 0
	r.Nonce = binary.LittleEndian.Uint64(buf[8:])
	r.Counter = binary.LittleEndian.Uint64(buf[16:])
	r.Timestamp = binary.LittleEndian.Uint64(buf[24:])
	r.Tag = append(r.Tag[:0], buf[reqHeaderSize:reqHeaderSize+tagLen]...)
	return nil
}

// AttResp is the prover→verifier attestation response: the request echo
// fields and the measurement MAC over the prover's writable memory, keyed
// with K_Attest and bound to the request (§3). A fast-path response (Fast
// set) instead carries the O(1) MAC over (signed request ‖ domain tag ‖
// monitor epoch ‖ last measured digest) — see FastMAC.
//
// Wire layout (little-endian):
//
//	offset 0  magic   0x41 'A' 0x50 'P' (attresp)
//	offset 2  version 1
//	offset 3  flags (bit0 = fast-path response; other bits reserved, zero)
//	offset 4  monitor epoch (4 bytes; zero when the prover has no monitor)
//	offset 8  nonce    (8 bytes, echoed)
//	offset 16 counter  (8 bytes, echoed)
//	offset 24 measurement (20 bytes, HMAC-SHA1)
//
// The flag and epoch fields are authenticated by inclusion in the fast
// MAC when Fast is set. On a full response the epoch is advisory — it
// seeds the verifier's fast state, and the worst a tamperer can do is
// desync that state, which only costs the prover a full MAC next round
// (fail-safe toward the expensive, fully-authenticated path).
type AttResp struct {
	Fast        bool
	Epoch       uint32
	Nonce       uint64
	Counter     uint64
	Measurement [sha1.Size]byte
}

const (
	respMagic0 = 0x41
	respMagic1 = 0x50
	respSize   = 24 + sha1.Size

	// respFlagFast marks an O(1) fast-path response.
	respFlagFast = 1 << 0
)

// AppendEncode appends the serialised response to dst and returns the
// extended slice.
func (r *AttResp) AppendEncode(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, respSize)...)
	buf := dst[off:]
	buf[0] = respMagic0
	buf[1] = respMagic1
	buf[2] = reqVersion
	buf[3] = 0
	if r.Fast {
		buf[3] = respFlagFast
	}
	binary.LittleEndian.PutUint32(buf[4:], r.Epoch)
	binary.LittleEndian.PutUint64(buf[8:], r.Nonce)
	binary.LittleEndian.PutUint64(buf[16:], r.Counter)
	copy(buf[24:], r.Measurement[:])
	return dst
}

// Encode serialises the response.
func (r *AttResp) Encode() []byte {
	return r.AppendEncode(make([]byte, 0, respSize))
}

// Static response-decode errors. DecodeAttRespInto sits on the verifier
// daemon's per-frame path, where a hostile peer controls how often the
// error branches run — pre-allocated errors keep those branches
// allocation-free.
var (
	errRespLength   = errors.New("protocol: bad response length")
	errRespMagic    = errors.New("protocol: bad response magic")
	errRespVersion  = errors.New("protocol: unsupported response version")
	errRespReserved = errors.New("protocol: nonzero reserved bytes in response header")
)

// DecodeAttRespInto parses a response into r without allocating: the
// measurement is copied into r's array, so r aliases nothing in buf once
// the call returns. Errors are static (no per-frame detail) — use
// DecodeAttResp when diagnostics matter more than allocations.
func DecodeAttRespInto(buf []byte, r *AttResp) error {
	if len(buf) != respSize {
		return errRespLength
	}
	if buf[0] != respMagic0 || buf[1] != respMagic1 {
		return errRespMagic
	}
	if buf[2] != reqVersion {
		return errRespVersion
	}
	// Undefined flag bits must be zero. The epoch word is a protocol
	// field, not a covert channel: it only ever matters when the fast MAC
	// (which binds it) verifies, or as an advisory seed on full responses.
	if buf[3]&^respFlagFast != 0 {
		return errRespReserved
	}
	r.Fast = buf[3]&respFlagFast != 0
	r.Epoch = binary.LittleEndian.Uint32(buf[4:])
	r.Nonce = binary.LittleEndian.Uint64(buf[8:])
	r.Counter = binary.LittleEndian.Uint64(buf[16:])
	copy(r.Measurement[:], buf[24:])
	return nil
}

// DecodeAttResp parses a response.
func DecodeAttResp(buf []byte) (*AttResp, error) {
	r := &AttResp{}
	if err := DecodeAttRespInto(buf, r); err != nil {
		// Re-derive the detailed message for callers that report errors.
		switch {
		case len(buf) != respSize:
			return nil, fmt.Errorf("protocol: response length %d, want %d", len(buf), respSize)
		case buf[0] != respMagic0 || buf[1] != respMagic1:
			return nil, fmt.Errorf("protocol: bad response magic %#x %#x", buf[0], buf[1])
		case buf[2] != reqVersion:
			return nil, fmt.Errorf("protocol: unsupported response version %d", buf[2])
		default:
			return nil, err
		}
	}
	return r, nil
}
