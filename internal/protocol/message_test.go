package protocol

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAttReqRoundTrip(t *testing.T) {
	req := &AttReq{
		Freshness: FreshCounter,
		Auth:      AuthHMACSHA1,
		Nonce:     0x1122334455667788,
		Counter:   42,
		Timestamp: 987654321,
		Tag:       bytes.Repeat([]byte{0xAB}, 20),
	}
	back, err := DecodeAttReq(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Freshness != req.Freshness || back.Auth != req.Auth ||
		back.Nonce != req.Nonce || back.Counter != req.Counter ||
		back.Timestamp != req.Timestamp || !bytes.Equal(back.Tag, req.Tag) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, req)
	}
}

func TestAttReqRoundTripQuick(t *testing.T) {
	f := func(fresh, auth uint8, nonce, counter, ts uint64, tagSeed []byte) bool {
		tag := tagSeed
		if len(tag) > maxTagSize {
			tag = tag[:maxTagSize]
		}
		req := &AttReq{
			Freshness: FreshnessKind(fresh),
			Auth:      AuthKind(auth),
			Nonce:     nonce,
			Counter:   counter,
			Timestamp: ts,
			Tag:       tag,
		}
		back, err := DecodeAttReq(req.Encode())
		if err != nil {
			return false
		}
		return back.Nonce == nonce && back.Counter == counter &&
			back.Timestamp == ts && bytes.Equal(back.Tag, tag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAttReqRejectsMalformedFrames(t *testing.T) {
	good := (&AttReq{Tag: []byte{1, 2, 3, 4}}).Encode()

	cases := map[string][]byte{
		"short":             good[:10],
		"empty":             {},
		"bad magic":         append([]byte{0xFF}, good[1:]...),
		"bad version":       mutate(good, 2, 0x99),
		"truncated tag":     good[:len(good)-1],
		"oversized frame":   append(append([]byte(nil), good...), 0x00),
		"nonzero reserved":  mutate(good, 6, 0x01),
		"nonzero reserved2": mutate(good, 7, 0x80),
	}
	for name, buf := range cases {
		if _, err := DecodeAttReq(buf); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}

	// Tag length field pointing past the maximum.
	huge := (&AttReq{}).Encode()
	huge[32] = 0xFF
	huge[33] = 0xFF
	if _, err := DecodeAttReq(huge); err == nil {
		t.Error("huge tag length: decode succeeded")
	}
}

func mutate(buf []byte, idx int, v byte) []byte {
	out := append([]byte(nil), buf...)
	out[idx] = v
	return out
}

func TestSignedBytesExcludesTag(t *testing.T) {
	a := &AttReq{Nonce: 7, Counter: 9, Tag: []byte{1, 2, 3}}
	b := &AttReq{Nonce: 7, Counter: 9, Tag: []byte{9, 9, 9, 9}}
	if !bytes.Equal(a.SignedBytes(), b.SignedBytes()) {
		t.Fatal("SignedBytes depends on the tag")
	}
	// ...but covers every protocol field.
	c := &AttReq{Nonce: 7, Counter: 10}
	if bytes.Equal(a.SignedBytes(), c.SignedBytes()) {
		t.Fatal("SignedBytes does not cover the counter")
	}
	d := &AttReq{Nonce: 8, Counter: 9}
	if bytes.Equal(a.SignedBytes(), d.SignedBytes()) {
		t.Fatal("SignedBytes does not cover the nonce")
	}
	e := &AttReq{Nonce: 7, Counter: 9, Timestamp: 5}
	if bytes.Equal(a.SignedBytes(), e.SignedBytes()) {
		t.Fatal("SignedBytes does not cover the timestamp")
	}
	f := &AttReq{Nonce: 7, Counter: 9, Freshness: FreshTimestamp}
	if bytes.Equal(a.SignedBytes(), f.SignedBytes()) {
		t.Fatal("SignedBytes does not cover the freshness kind")
	}
}

func TestAttRespRoundTrip(t *testing.T) {
	resp := &AttResp{Nonce: 11, Counter: 22}
	for i := range resp.Measurement {
		resp.Measurement[i] = byte(i)
	}
	back, err := DecodeAttResp(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Nonce != 11 || back.Counter != 22 || back.Measurement != resp.Measurement {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestDecodeAttRespRejectsMalformedFrames(t *testing.T) {
	good := (&AttResp{}).Encode()
	if _, err := DecodeAttResp(good[:len(good)-1]); err == nil {
		t.Error("short response decoded")
	}
	if _, err := DecodeAttResp(mutate(good, 0, 0xFF)); err == nil {
		t.Error("bad-magic response decoded")
	}
	if _, err := DecodeAttResp(mutate(good, 2, 0x42)); err == nil {
		t.Error("bad-version response decoded")
	}
	if _, err := DecodeAttResp(append(good, 0)); err == nil {
		t.Error("oversized response decoded")
	}
}

func TestKindStrings(t *testing.T) {
	if FreshCounter.String() != "counter" || FreshTimestamp.String() != "timestamps" ||
		FreshNonceHistory.String() != "nonces" || FreshNone.String() != "none" {
		t.Error("freshness kind strings wrong")
	}
	if AuthHMACSHA1.String() != "hmac-sha1" || AuthECDSA.String() != "ecdsa-secp160r1" {
		t.Error("auth kind strings wrong")
	}
	if FreshnessKind(200).String() == "" || AuthKind(200).String() == "" {
		t.Error("unknown kinds should still format")
	}
}
