package protocol

import (
	"math/rand"
	"testing"
)

// TestAnyBitFlipBreaksAuthentication: a single bit flipped anywhere in the
// authenticated portion of a signed request must make verification fail,
// for every symmetric scheme. This is the property the prover's gate
// stands on — an in-path adversary cannot usefully mutate genuine
// requests.
func TestAnyBitFlipBreaksAuthentication(t *testing.T) {
	req := &AttReq{
		Freshness: FreshCounter,
		Auth:      AuthHMACSHA1,
		Nonce:     7,
		Counter:   13,
		Timestamp: 99,
	}
	signed := req.SignedBytes()
	for _, a := range symmetricAuthenticators(t) {
		tag, err := a.Sign(signed)
		if err != nil {
			t.Fatal(err)
		}
		for byteIdx := 0; byteIdx < len(signed); byteIdx++ {
			for bit := 0; bit < 8; bit++ {
				mutated := append([]byte(nil), signed...)
				mutated[byteIdx] ^= 1 << bit
				if ok, _ := a.Verify(mutated, tag); ok {
					t.Fatalf("%v: flip of byte %d bit %d still verified", a.Kind(), byteIdx, bit)
				}
			}
		}
	}
}

// TestAnyTagBitFlipRejected: flipping any tag bit must break verification.
func TestAnyTagBitFlipRejected(t *testing.T) {
	signed := (&AttReq{Nonce: 1}).SignedBytes()
	for _, a := range symmetricAuthenticators(t) {
		tag, _ := a.Sign(signed)
		for byteIdx := range tag {
			for bit := 0; bit < 8; bit++ {
				bad := append([]byte(nil), tag...)
				bad[byteIdx] ^= 1 << bit
				if ok, _ := a.Verify(signed, bad); ok {
					t.Fatalf("%v: tag flip byte %d bit %d verified", a.Kind(), byteIdx, bit)
				}
			}
		}
	}
}

// TestRandomFrameMutationsNeverDecodeAndVerify: random multi-byte
// corruptions of a full encoded frame either fail to decode or fail
// verification — never both succeed. Deterministic seed keeps runs
// reproducible.
func TestRandomFrameMutationsNeverDecodeAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	auth := NewHMACAuth([]byte("gate-key-gate-key-20"))
	req := &AttReq{Freshness: FreshCounter, Auth: AuthHMACSHA1, Nonce: 5, Counter: 6}
	tag, _ := auth.Sign(req.SignedBytes())
	req.Tag = tag
	frame := req.Encode()

	for trial := 0; trial < 2000; trial++ {
		mutated := append([]byte(nil), frame...)
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		got, err := DecodeAttReq(mutated)
		if err != nil {
			continue // framing reject: fine
		}
		if ok, _ := auth.Verify(got.SignedBytes(), got.Tag); ok {
			// Only acceptable if the mutation was a no-op overall
			// (xor with itself cannot happen since we xor non-zero, but
			// two flips may cancel).
			if string(mutated) == string(frame) {
				continue
			}
			t.Fatalf("trial %d: corrupted frame decoded AND verified", trial)
		}
	}
}

// TestSwarmReqMutationsNeverDecodeAndVerify gives the swarm broadcast
// request the same hostile-bytes treatment: random corruptions of a
// K_Swarm-signed frame either fail framing or fail the gate MAC — a
// mutated request can never reach a node's measurement work.
func TestSwarmReqMutationsNeverDecodeAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	key := DeriveSwarmKey([]byte("mutation-master"))
	req := &SwarmReq{OwnOnly: false, Root: 12, Nonce: 5, TreeID: 6}
	req.Sign(key[:])
	frame := req.Encode()
	auth := NewHMACAuth(key[:])

	for trial := 0; trial < 2000; trial++ {
		mutated := append([]byte(nil), frame...)
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		got, err := DecodeSwarmReq(mutated)
		if err != nil {
			continue // framing reject: fine
		}
		if ok, _ := auth.Verify(got.SignedBytes(), got.Tag); ok {
			if string(mutated) == string(frame) {
				continue // cancelling flips
			}
			t.Fatalf("trial %d: corrupted swarm request decoded AND verified", trial)
		}
	}
}

// TestSwarmRespMutationsNeverMatchAggregate: corruptions of an aggregate
// response either fail DecodeSwarmRespInto or change the decoded
// (aggregate, bitmap, depth, root, nonce) tuple — a mutation can never
// yield the same verifier-side acceptance as the original frame.
func TestSwarmRespMutationsNeverMatchAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	orig := &SwarmResp{Depth: 2, Root: 4, Nonce: 9, Bitmap: []byte{0xAB, 0x01}}
	for i := range orig.Aggregate {
		orig.Aggregate[i] = byte(i*31 + 1)
	}
	frame := orig.Encode()

	var got SwarmResp
	for trial := 0; trial < 2000; trial++ {
		mutated := append([]byte(nil), frame...)
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		if string(mutated) == string(frame) {
			continue // cancelling flips
		}
		if err := DecodeSwarmRespInto(mutated, &got); err != nil {
			continue // framing reject: fine
		}
		same := got.Depth == orig.Depth && got.Root == orig.Root &&
			got.Nonce == orig.Nonce && got.Aggregate == orig.Aggregate &&
			string(got.Bitmap) == string(orig.Bitmap)
		if same {
			t.Fatalf("trial %d: corrupted swarm response decoded to the original tuple", trial)
		}
	}
}

// TestCommandFrameMutations does the same for the service-command
// envelope, whose body is part of the authenticated bytes.
func TestCommandFrameMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	auth := NewHMACAuth([]byte("gate-key-gate-key-20"))
	req := &CommandReq{
		Kind:      CmdSecureUpdate,
		Freshness: FreshCounter,
		Auth:      AuthHMACSHA1,
		Nonce:     9,
		Counter:   10,
		Body:      []byte("firmware-fragment-bytes"),
	}
	tag, _ := auth.Sign(req.SignedBytes())
	req.Tag = tag
	frame := req.Encode()

	for trial := 0; trial < 2000; trial++ {
		mutated := append([]byte(nil), frame...)
		mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		got, err := DecodeCommandReq(mutated)
		if err != nil {
			continue
		}
		if ok, _ := auth.Verify(got.SignedBytes(), got.Tag); ok {
			t.Fatalf("trial %d: corrupted command decoded AND verified", trial)
		}
	}
}
