package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unicode/utf8"
)

// This file defines the session-layer frames of the networked deployment
// (internal/server ↔ internal/agent). They ride the same transport as the
// attestation and command frames but never enter the trust anchor's gate:
// Hello identifies a prover connection to the verifier daemon, and
// StatsReport carries the prover's gate counters so the daemon can expose
// fleet-wide rejected-at-gate/accepted/cause totals. Neither frame is
// authenticated — they are operational metadata, and the daemon must treat
// them as adversary-controllable (a lying agent can misreport its own
// stats, but cannot forge an attestation measurement, which is the only
// security-relevant signal).

// Hello is the agent→daemon session opener: the prover's identity and the
// protocol policy it is provisioned with, so the daemon can refuse
// mismatched configurations before issuing any request.
//
// Wire layout (little-endian):
//
//	offset 0 magic   0x41 'A' 0x48 'H'
//	offset 2 version 1
//	offset 3 freshness kind
//	offset 4 auth kind
//	offset 5 tier class (0 = unclassified/default)
//	offset 6 device-id length (2 bytes)
//	offset 8 device id (UTF-8, ≤ MaxDeviceID bytes)
//
// Byte 5 was reserved-must-be-zero through protocol version 1's first
// deployments; it now carries the device's advertised admission-tier
// class. Tier 0 ("unclassified") is byte-identical to the old encoding,
// so pre-tier agents interoperate unchanged. The advertisement is an
// unauthenticated *hint*: the daemon's server-side tier policy (device-ID
// match rules) always wins, so a hostile agent advertising a premium
// class cannot buy budget the operator didn't grant its identity.
type Hello struct {
	Freshness FreshnessKind
	Auth      AuthKind
	// Tier is the device's advertised admission-tier class (0 = none).
	Tier     uint8
	DeviceID string
}

const (
	helloMagic1 = 0x48
	helloHeader = 8

	// MaxDeviceID bounds the device identifier length in bytes.
	MaxDeviceID = 64
)

// AppendEncode appends the serialised hello to dst and returns the
// extended slice.
func (h *Hello) AppendEncode(dst []byte) []byte {
	if len(h.DeviceID) == 0 || len(h.DeviceID) > MaxDeviceID {
		panic(fmt.Sprintf("protocol: device id length %d out of range (1..%d)", len(h.DeviceID), MaxDeviceID))
	}
	off := len(dst)
	dst = append(dst, make([]byte, helloHeader)...)
	buf := dst[off:]
	buf[0] = reqMagic0
	buf[1] = helloMagic1
	buf[2] = reqVersion
	buf[3] = byte(h.Freshness)
	buf[4] = byte(h.Auth)
	buf[5] = h.Tier
	binary.LittleEndian.PutUint16(buf[6:], uint16(len(h.DeviceID)))
	return append(dst, h.DeviceID...)
}

// Encode serialises the hello.
func (h *Hello) Encode() []byte {
	return h.AppendEncode(make([]byte, 0, helloHeader+len(h.DeviceID)))
}

// DecodeHello parses a hello frame with strict framing.
func DecodeHello(buf []byte) (*Hello, error) {
	if len(buf) < helloHeader {
		return nil, fmt.Errorf("protocol: hello too short (%d bytes)", len(buf))
	}
	if buf[0] != reqMagic0 || buf[1] != helloMagic1 {
		return nil, fmt.Errorf("protocol: bad hello magic %#x %#x", buf[0], buf[1])
	}
	if buf[2] != reqVersion {
		return nil, fmt.Errorf("protocol: unsupported hello version %d", buf[2])
	}
	idLen := int(binary.LittleEndian.Uint16(buf[6:]))
	if idLen == 0 || idLen > MaxDeviceID {
		return nil, fmt.Errorf("protocol: hello device-id length %d out of range (1..%d)", idLen, MaxDeviceID)
	}
	if len(buf) != helloHeader+idLen {
		return nil, fmt.Errorf("protocol: hello length %d does not match id length %d", len(buf), idLen)
	}
	id := string(buf[helloHeader:])
	if !utf8.ValidString(id) {
		return nil, fmt.Errorf("protocol: hello device id is not valid UTF-8")
	}
	return &Hello{
		Freshness: FreshnessKind(buf[3]),
		Auth:      AuthKind(buf[4]),
		Tier:      buf[5],
		DeviceID:  id,
	}, nil
}

// StatsReport is the agent→daemon counter snapshot: the anchor's gate
// statistics (cumulative since boot), so the daemon can report the
// fleet-wide cost asymmetry — how many frames died at the cheap gate
// versus how many bought a full memory measurement.
//
// Wire layout (little-endian): magic 0x41 'A' 0x53 'S', version 1,
// 5 reserved bytes, then eleven 8-byte counters in field order.
type StatsReport struct {
	Received          uint64 // request frames submitted to the gate
	Malformed         uint64 // framing rejects (no crypto run)
	AuthRejected      uint64 // tag verification failures
	FreshnessRejected uint64 // replay/reorder/delay rejects
	Faults            uint64 // bus faults inside the anchor
	Measurements      uint64 // full memory measurements (the MAC work)
	FastResponses     uint64 // O(1) fast-path responses (no memory MAC)
	Commands          uint64 // service-command frames submitted
	CommandsExecuted  uint64 // commands that passed the gate and ran
	ActiveCycles      uint64 // total MCU cycles spent (energy basis)
	FramesIn          uint64 // frames the agent pulled off the socket
}

const (
	statsMagic1     = 0x53
	statsNumFields  = 11
	statsHeaderSize = 8
	statsFrameSize  = statsHeaderSize + 8*statsNumFields
)

// GateRejected is the total of all cheap-gate rejection causes.
func (s *StatsReport) GateRejected() uint64 {
	return s.Malformed + s.AuthRejected + s.FreshnessRejected
}

// Accumulate adds src's counters into s field-by-field. It is the fold
// the daemon uses both for fleet aggregation and for banking a dying
// counter epoch into a device's high-water base.
func (s *StatsReport) Accumulate(src *StatsReport) {
	sf, of := s.fields(), src.fields()
	for i := range sf {
		*sf[i] += *of[i]
	}
}

// Regressed reports whether any counter in s is lower than in prev.
// Agent counters are cumulative since boot and stats frames arrive in
// order on one stream, so a regression means the device rebooted (or was
// rebuilt) and restarted its counters from zero — the signal the daemon
// uses to open a new counter epoch.
func (s *StatsReport) Regressed(prev *StatsReport) bool {
	sf, pf := s.fields(), prev.fields()
	for i := range sf {
		if *sf[i] < *pf[i] {
			return true
		}
	}
	return false
}

func (s *StatsReport) fields() [statsNumFields]*uint64 {
	return [statsNumFields]*uint64{
		&s.Received, &s.Malformed, &s.AuthRejected, &s.FreshnessRejected,
		&s.Faults, &s.Measurements, &s.FastResponses, &s.Commands,
		&s.CommandsExecuted, &s.ActiveCycles, &s.FramesIn,
	}
}

// AppendEncode appends the serialised report to dst and returns the
// extended slice.
func (s *StatsReport) AppendEncode(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, statsFrameSize)...)
	buf := dst[off:]
	buf[0] = reqMagic0
	buf[1] = statsMagic1
	buf[2] = reqVersion
	for i, p := range s.fields() {
		binary.LittleEndian.PutUint64(buf[statsHeaderSize+8*i:], *p)
	}
	return dst
}

// Encode serialises the report.
func (s *StatsReport) Encode() []byte {
	return s.AppendEncode(make([]byte, 0, statsFrameSize))
}

// Static stats-decode errors. DecodeStatsReportInto sits on the daemon's
// per-frame serving path, where a hostile peer controls the input; the
// reject path must not allocate, so the errors carry no per-frame detail.
var (
	errStatsLength   = errors.New("protocol: bad stats report length")
	errStatsMagic    = errors.New("protocol: bad stats magic")
	errStatsVersion  = errors.New("protocol: unsupported stats version")
	errStatsReserved = errors.New("protocol: nonzero reserved bytes in stats header")
)

// DecodeStatsReportInto parses a stats frame into s without allocating:
// strict framing, static errors. s is fully overwritten on success and
// unspecified on failure.
func DecodeStatsReportInto(buf []byte, s *StatsReport) error {
	if len(buf) != statsFrameSize {
		return errStatsLength
	}
	if buf[0] != reqMagic0 || buf[1] != statsMagic1 {
		return errStatsMagic
	}
	if buf[2] != reqVersion {
		return errStatsVersion
	}
	if buf[3] != 0 || buf[4] != 0 || buf[5] != 0 || buf[6] != 0 || buf[7] != 0 {
		return errStatsReserved
	}
	for i, p := range s.fields() {
		*p = binary.LittleEndian.Uint64(buf[statsHeaderSize+8*i:])
	}
	return nil
}

// DecodeStatsReport parses a stats frame with strict framing.
func DecodeStatsReport(buf []byte) (*StatsReport, error) {
	s := &StatsReport{}
	if err := DecodeStatsReportInto(buf, s); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseFreshnessKind maps a FreshnessKind.String() value back to the kind
// (command-line flag parsing for the networked binaries).
func ParseFreshnessKind(s string) (FreshnessKind, error) {
	for _, k := range []FreshnessKind{FreshNone, FreshNonceHistory, FreshCounter, FreshTimestamp} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("protocol: unknown freshness kind %q (none, nonces, counter, timestamps)", s)
}

// ParseAuthKind maps an AuthKind.String() value back to the kind.
func ParseAuthKind(s string) (AuthKind, error) {
	for _, k := range []AuthKind{AuthNone, AuthHMACSHA1, AuthAESCBCMAC, AuthSpeckCBCMAC, AuthECDSA} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("protocol: unknown auth kind %q (none, hmac-sha1, aes-128-cbc-mac, speck-64/128-cbc-mac, ecdsa-secp160r1)", s)
}
