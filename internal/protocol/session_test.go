package protocol

import (
	"bytes"
	"strings"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{Freshness: FreshCounter, Auth: AuthHMACSHA1, Tier: 3, DeviceID: "dev-042"}
	raw := h.Encode()
	if ClassifyFrame(raw) != FrameHello {
		t.Fatalf("ClassifyFrame = %v, want FrameHello", ClassifyFrame(raw))
	}
	got, err := DecodeHello(raw)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

// TestHelloTierByteCompat pins the wire evolution of header byte 5: a
// tier-0 hello must be byte-identical to the pre-tier encoding (where the
// byte was reserved-zero), and a pre-tier decoder's frame must decode
// here as tier 0 — old agents and new daemons interoperate both ways.
func TestHelloTierByteCompat(t *testing.T) {
	legacy := (&Hello{Freshness: FreshCounter, Auth: AuthHMACSHA1, DeviceID: "d"}).Encode()
	if legacy[5] != 0 {
		t.Fatalf("tier-0 hello has nonzero byte 5 (%#x): not wire-compatible with the reserved-byte era", legacy[5])
	}
	got, err := DecodeHello(legacy)
	if err != nil || got.Tier != 0 {
		t.Fatalf("legacy-layout hello: got tier %d, err %v", got.Tier, err)
	}
	classed := append([]byte(nil), legacy...)
	classed[5] = 7
	got, err = DecodeHello(classed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tier != 7 {
		t.Fatalf("advertised tier: got %d, want 7", got.Tier)
	}
}

func TestHelloRejectsBadFrames(t *testing.T) {
	good := (&Hello{Freshness: FreshCounter, Auth: AuthHMACSHA1, DeviceID: "d"}).Encode()

	cases := map[string][]byte{
		"short":        good[:4],
		"bad magic":    append([]byte{0x42}, good[1:]...),
		"bad version":  func() []byte { b := append([]byte(nil), good...); b[2] = 9; return b }(),
		"length lie":   func() []byte { b := append([]byte(nil), good...); b[6] = 44; return b }(),
		"trailing":     append(append([]byte(nil), good...), 'x'),
		"invalid utf8": func() []byte { b := append([]byte(nil), good...); b[len(b)-1] = 0xFF; return b }(),
	}
	for name, raw := range cases {
		if _, err := DecodeHello(raw); err == nil {
			t.Errorf("%s: malformed hello accepted", name)
		}
	}
	if _, err := DecodeHello((&Hello{DeviceID: "x"}).Encode()); err != nil {
		t.Fatalf("minimal hello rejected: %v", err)
	}
}

func TestHelloEncodePanicsOnBadID(t *testing.T) {
	for _, id := range []string{"", strings.Repeat("a", MaxDeviceID+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode accepted device id of length %d", len(id))
				}
			}()
			(&Hello{DeviceID: id}).Encode()
		}()
	}
}

func TestStatsReportRoundTrip(t *testing.T) {
	s := &StatsReport{
		Received: 1, Malformed: 2, AuthRejected: 3, FreshnessRejected: 4,
		Faults: 5, Measurements: 6, Commands: 7, CommandsExecuted: 8,
		ActiveCycles: 1 << 40, FramesIn: 10,
	}
	raw := s.Encode()
	if ClassifyFrame(raw) != FrameStats {
		t.Fatalf("ClassifyFrame = %v, want FrameStats", ClassifyFrame(raw))
	}
	got, err := DecodeStatsReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *s {
		t.Fatalf("round trip: got %+v, want %+v", got, s)
	}
	if got.GateRejected() != 2+3+4 {
		t.Fatalf("GateRejected = %d, want 9", got.GateRejected())
	}
}

func TestStatsReportRejectsBadFrames(t *testing.T) {
	good := (&StatsReport{Received: 1}).Encode()
	if _, err := DecodeStatsReport(good[:len(good)-1]); err == nil {
		t.Error("truncated stats accepted")
	}
	if _, err := DecodeStatsReport(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("oversized stats accepted")
	}
	bad := append([]byte(nil), good...)
	bad[4] = 1
	if _, err := DecodeStatsReport(bad); err == nil {
		t.Error("nonzero reserved bytes accepted")
	}
	if !bytes.Equal(good, (&StatsReport{Received: 1}).Encode()) {
		t.Error("Encode is not deterministic")
	}
}

func TestParseKinds(t *testing.T) {
	for _, k := range []FreshnessKind{FreshNone, FreshNonceHistory, FreshCounter, FreshTimestamp} {
		got, err := ParseFreshnessKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseFreshnessKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	for _, k := range []AuthKind{AuthNone, AuthHMACSHA1, AuthAESCBCMAC, AuthSpeckCBCMAC, AuthECDSA} {
		got, err := ParseAuthKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseAuthKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseFreshnessKind("bogus"); err == nil {
		t.Error("bogus freshness kind parsed")
	}
	if _, err := ParseAuthKind("bogus"); err == nil {
		t.Error("bogus auth kind parsed")
	}
}
