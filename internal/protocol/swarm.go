package protocol

// Swarm attestation frames and tag derivation (SEDA-style collective
// attestation): provers form a spanning tree, each node MACs its own
// measurement state and folds its children's aggregate tags into one
// frame, so the verifier checks a single aggregate instead of N
// responses. The verifier recomputes the expected aggregate from
// per-device verified state (internal/swarm); these are the wire frames
// and the keyed primitives both ends share.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/sha1"
)

// SwarmReq is the verifier→swarm aggregate-attestation request, broadcast
// down the spanning tree. It is authenticated with the fleet-wide swarm
// broadcast key K_Swarm (DeriveSwarmKey) so every node can gate-check the
// request before doing any measurement work — the §3.1 DoS asymmetry
// argument applies per hop. Root addresses a subtree for bisection;
// OwnOnly asks the addressed node for its own contribution without
// aggregating children (the leaf probe of the bisection contract).
//
// Wire layout (little-endian):
//
//	offset 0  magic   0x41 'A' 0x57 'W' (swarmreq)
//	offset 2  version 1
//	offset 3  flags (bit0 = own-only; other bits reserved, zero)
//	offset 4  root (2 bytes, member index of the addressed subtree root)
//	offset 6  reserved (2 bytes, zero)
//	offset 8  nonce   (8 bytes, fresh per query)
//	offset 16 tree id (8 bytes, identifies the topology generation)
//	offset 24 tag length (2 bytes)
//	offset 26 tag (variable)
type SwarmReq struct {
	// OwnOnly asks the addressed root for its own tag without folding
	// children — the bisection leaf probe.
	OwnOnly bool
	// Root is the member index of the subtree root this request addresses.
	Root   uint16
	Nonce  uint64
	TreeID uint64
	Tag    []byte
}

const (
	swarmReqMagic1     = 0x57
	swarmReqHeaderSize = 26

	// swarmReqFlagOwnOnly marks a bisection probe for one node's own tag.
	swarmReqFlagOwnOnly = 1 << 0
)

// SignedBytes returns the authenticated portion of the request: the full
// header with the tag-length field zeroed. Root and OwnOnly sit inside
// the MAC, so a middleman cannot redirect a probe at a different subtree.
func (r *SwarmReq) SignedBytes() []byte {
	buf := make([]byte, swarmReqHeaderSize)
	r.encodeHeader(buf, 0)
	return buf
}

// AppendSignedBytes appends the authenticated portion to dst, allocating
// only when dst lacks capacity — every node absorbs the signed header per
// round and must not generate garbage doing so.
func (r *SwarmReq) AppendSignedBytes(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, swarmReqHeaderSize)...)
	r.encodeHeader(dst[off:], 0)
	return dst
}

func (r *SwarmReq) encodeHeader(buf []byte, tagLen int) {
	buf[0] = reqMagic0
	buf[1] = swarmReqMagic1
	buf[2] = reqVersion
	buf[3] = 0
	if r.OwnOnly {
		buf[3] = swarmReqFlagOwnOnly
	}
	binary.LittleEndian.PutUint16(buf[4:], r.Root)
	buf[6], buf[7] = 0, 0
	binary.LittleEndian.PutUint64(buf[8:], r.Nonce)
	binary.LittleEndian.PutUint64(buf[16:], r.TreeID)
	binary.LittleEndian.PutUint16(buf[24:], uint16(tagLen))
}

// Sign computes and attaches the K_Swarm request tag.
func (r *SwarmReq) Sign(swarmKey []byte) {
	tag := hmac.SHA1(swarmKey, r.SignedBytes())
	r.Tag = tag[:]
}

// AppendEncode appends the serialised request to dst and returns the
// extended slice. It allocates only when dst lacks capacity.
func (r *SwarmReq) AppendEncode(dst []byte) []byte {
	if len(r.Tag) > maxTagSize {
		panic(fmt.Sprintf("protocol: swarm tag length %d exceeds maximum %d", len(r.Tag), maxTagSize))
	}
	off := len(dst)
	dst = append(dst, make([]byte, swarmReqHeaderSize)...)
	r.encodeHeader(dst[off:], len(r.Tag))
	return append(dst, r.Tag...)
}

// Encode serialises the request.
func (r *SwarmReq) Encode() []byte {
	return r.AppendEncode(make([]byte, 0, swarmReqHeaderSize+len(r.Tag)))
}

// Static swarm-request decode errors, pre-allocated so per-hop gate
// rejection of malformed frames stays allocation-free.
var (
	errSwarmReqLength   = errors.New("protocol: bad swarm request length")
	errSwarmReqMagic    = errors.New("protocol: bad swarm request magic")
	errSwarmReqVersion  = errors.New("protocol: unsupported swarm request version")
	errSwarmReqReserved = errors.New("protocol: nonzero reserved bytes in swarm request header")
	errSwarmReqTagLen   = errors.New("protocol: bad swarm request tag length")
)

// DecodeSwarmReqInto parses a request into r without allocating beyond
// r's own tag buffer, which is reused across calls. Strict framing with
// static errors; r is fully overwritten on success and unspecified on
// failure.
func DecodeSwarmReqInto(buf []byte, r *SwarmReq) error {
	if len(buf) < swarmReqHeaderSize {
		return errSwarmReqLength
	}
	if buf[0] != reqMagic0 || buf[1] != swarmReqMagic1 {
		return errSwarmReqMagic
	}
	if buf[2] != reqVersion {
		return errSwarmReqVersion
	}
	if buf[3]&^swarmReqFlagOwnOnly != 0 || buf[6] != 0 || buf[7] != 0 {
		return errSwarmReqReserved
	}
	tagLen := int(binary.LittleEndian.Uint16(buf[24:]))
	if tagLen > maxTagSize || len(buf) != swarmReqHeaderSize+tagLen {
		return errSwarmReqTagLen
	}
	r.OwnOnly = buf[3]&swarmReqFlagOwnOnly != 0
	r.Root = binary.LittleEndian.Uint16(buf[4:])
	r.Nonce = binary.LittleEndian.Uint64(buf[8:])
	r.TreeID = binary.LittleEndian.Uint64(buf[16:])
	r.Tag = append(r.Tag[:0], buf[swarmReqHeaderSize:swarmReqHeaderSize+tagLen]...)
	return nil
}

// DecodeSwarmReq parses a request with detailed errors.
func DecodeSwarmReq(buf []byte) (*SwarmReq, error) {
	r := &SwarmReq{}
	if err := DecodeSwarmReqInto(buf, r); err != nil {
		switch {
		case len(buf) < swarmReqHeaderSize:
			return nil, fmt.Errorf("protocol: swarm request too short (%d bytes)", len(buf))
		case buf[0] != reqMagic0 || buf[1] != swarmReqMagic1:
			return nil, fmt.Errorf("protocol: bad swarm request magic %#x %#x", buf[0], buf[1])
		case buf[2] != reqVersion:
			return nil, fmt.Errorf("protocol: unsupported swarm request version %d", buf[2])
		default:
			return nil, err
		}
	}
	if len(r.Tag) == 0 {
		r.Tag = nil
	}
	return r, nil
}

// SwarmResp is the node→parent (and root→verifier) aggregate response:
// one tag folding the subtree's member contributions, a presence bitmap
// over the fleet's member-index space, and the subtree height for
// topology sanity checks.
//
// Wire layout (little-endian):
//
//	offset 0  magic   0x41 'A' 0x56 'V' (swarmresp)
//	offset 2  version 1
//	offset 3  depth (1 byte, subtree height in hops; 0 = leaf or own-only)
//	offset 4  root (2 bytes, echoed subtree-root member index)
//	offset 6  bitmap length (2 bytes)
//	offset 8  nonce (8 bytes, echoed)
//	offset 16 aggregate (20 bytes, HMAC-SHA1 fold)
//	offset 36 bitmap (variable, bit i = member i contributed)
type SwarmResp struct {
	Depth     uint8
	Root      uint16
	Nonce     uint64
	Aggregate [sha1.Size]byte
	Bitmap    []byte
}

const (
	swarmRespMagic1     = 0x56
	swarmRespHeaderSize = 36

	// maxSwarmBitmap bounds the presence bitmap at 8 KiB — 65536 members,
	// the full uint16 index space.
	maxSwarmBitmap = 8192
)

// SwarmBitmapLen is the presence-bitmap size for an n-member fleet.
func SwarmBitmapLen(n int) int { return (n + 7) / 8 }

// SetSwarmBit marks member i present.
func SetSwarmBit(bm []byte, i int) { bm[i/8] |= 1 << (i % 8) }

// SwarmBit reports whether member i is marked present.
func SwarmBit(bm []byte, i int) bool {
	if i/8 >= len(bm) {
		return false
	}
	return bm[i/8]&(1<<(i%8)) != 0
}

// AppendEncode appends the serialised response to dst and returns the
// extended slice. It allocates only when dst lacks capacity.
func (r *SwarmResp) AppendEncode(dst []byte) []byte {
	if len(r.Bitmap) > maxSwarmBitmap {
		panic(fmt.Sprintf("protocol: swarm bitmap length %d exceeds maximum %d", len(r.Bitmap), maxSwarmBitmap))
	}
	off := len(dst)
	dst = append(dst, make([]byte, swarmRespHeaderSize)...)
	buf := dst[off:]
	buf[0] = respMagic0
	buf[1] = swarmRespMagic1
	buf[2] = reqVersion
	buf[3] = r.Depth
	binary.LittleEndian.PutUint16(buf[4:], r.Root)
	binary.LittleEndian.PutUint16(buf[6:], uint16(len(r.Bitmap)))
	binary.LittleEndian.PutUint64(buf[8:], r.Nonce)
	copy(buf[16:], r.Aggregate[:])
	return append(dst, r.Bitmap...)
}

// Encode serialises the response.
func (r *SwarmResp) Encode() []byte {
	return r.AppendEncode(make([]byte, 0, swarmRespHeaderSize+len(r.Bitmap)))
}

// Static swarm-response decode errors: DecodeSwarmRespInto sits on the
// verifier daemon's per-frame path where a hostile peer controls how
// often the reject branches run.
var (
	errSwarmRespLength = errors.New("protocol: bad swarm response length")
	errSwarmRespMagic  = errors.New("protocol: bad swarm response magic")
	errSwarmRespVer    = errors.New("protocol: unsupported swarm response version")
	errSwarmRespBitmap = errors.New("protocol: bad swarm response bitmap length")
)

// DecodeSwarmRespInto parses a response into r without allocating beyond
// r's own bitmap buffer, which is reused across calls (append into
// r.Bitmap[:0]). r aliases nothing in buf once the call returns; r is
// fully overwritten on success and unspecified on failure.
func DecodeSwarmRespInto(buf []byte, r *SwarmResp) error {
	if len(buf) < swarmRespHeaderSize {
		return errSwarmRespLength
	}
	if buf[0] != respMagic0 || buf[1] != swarmRespMagic1 {
		return errSwarmRespMagic
	}
	if buf[2] != reqVersion {
		return errSwarmRespVer
	}
	bmLen := int(binary.LittleEndian.Uint16(buf[6:]))
	if bmLen > maxSwarmBitmap || len(buf) != swarmRespHeaderSize+bmLen {
		return errSwarmRespBitmap
	}
	r.Depth = buf[3]
	r.Root = binary.LittleEndian.Uint16(buf[4:])
	r.Nonce = binary.LittleEndian.Uint64(buf[8:])
	copy(r.Aggregate[:], buf[16:])
	r.Bitmap = append(r.Bitmap[:0], buf[swarmRespHeaderSize:swarmRespHeaderSize+bmLen]...)
	return nil
}

// DecodeSwarmResp parses a response with detailed errors.
func DecodeSwarmResp(buf []byte) (*SwarmResp, error) {
	r := &SwarmResp{}
	if err := DecodeSwarmRespInto(buf, r); err != nil {
		switch {
		case len(buf) < swarmRespHeaderSize:
			return nil, fmt.Errorf("protocol: swarm response too short (%d bytes)", len(buf))
		case buf[0] != respMagic0 || buf[1] != swarmRespMagic1:
			return nil, fmt.Errorf("protocol: bad swarm response magic %#x %#x", buf[0], buf[1])
		case buf[2] != reqVersion:
			return nil, fmt.Errorf("protocol: unsupported swarm response version %d", buf[2])
		default:
			return nil, err
		}
	}
	if len(r.Bitmap) == 0 {
		r.Bitmap = nil
	}
	return r, nil
}

// Swarm tag derivation. Three domain-separated HMAC-SHA1 layers, all
// keyed with the member's per-device K_Attest:
//
//	mem_i  = HMAC(K_i, "swarm-mem-v1" ‖ memory)
//	own_i  = HMAC(K_i, signed-req ‖ "swarm-own-v1" ‖ index ‖ epoch ‖ mem_i)
//	agg_i  = own_i                                  (no present children)
//	       = HMAC(K_i, "swarm-fold-v1" ‖ own_i ‖ agg_c1 ‖ … ‖ agg_ck)
//	                                                (present children, child order)
//
// mem_i is request-independent, so a clean node (write monitor armed, no
// stores since the last measurement) reuses its stored digest and answers
// a round in O(1); the verifier memoizes HMAC(K_i, "swarm-mem-v1" ‖
// golden) once per device and recomputes the whole expected aggregate in
// N small MACs per round. The epoch binds the RATA monitor generation:
// any out-of-band rearm desyncs own_i from the verifier's record exactly
// as the 1:1 fast path does.
var (
	swarmMemDomain  = []byte("swarm-mem-v1")
	swarmOwnDomain  = []byte("swarm-own-v1")
	swarmFoldDomain = []byte("swarm-fold-v1")
)

// DeriveSwarmKey derives the fleet-wide swarm broadcast key K_Swarm from
// the deployment master secret: HMAC-SHA1(master, "K_Swarm"). It only
// authenticates tree-wide requests (gating, not evidence) — member
// evidence is always keyed per device, so K_Swarm leaking from one
// member lets an adversary waste fleet energy but never forge an
// aggregate.
func DeriveSwarmKey(master []byte) [sha1.Size]byte {
	m := hmac.NewSHA1(master)
	m.Write([]byte("K_Swarm"))
	var out [sha1.Size]byte
	copy(out[:], m.Sum(nil))
	return out
}

// SwarmMemDigestInto computes mem_i into out using mac (keyed with the
// member's K_Attest) without allocating. mac is reset first.
func SwarmMemDigestInto(mac *hmac.MAC, mem []byte, out *[sha1.Size]byte) {
	mac.Reset()
	mac.Write(swarmMemDomain)
	mac.Write(mem)
	mac.SumInto(out)
}

// SwarmMemDigest is the allocating convenience form of SwarmMemDigestInto.
func SwarmMemDigest(key, mem []byte) [sha1.Size]byte {
	var out [sha1.Size]byte
	SwarmMemDigestInto(hmac.NewSHA1(key), mem, &out)
	return out
}

// SwarmOwnTagInto computes own_i into out using mac (keyed with the
// member's K_Attest) without allocating: signedReq is the request's
// AppendSignedBytes image, index the member's tree index, epoch the
// monitor generation the digest was measured under. mac is reset first.
func SwarmOwnTagInto(mac *hmac.MAC, signedReq []byte, index uint16, epoch uint32, memDigest *[sha1.Size]byte, out *[sha1.Size]byte) {
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:], index)
	binary.LittleEndian.PutUint32(hdr[2:], epoch)
	mac.Reset()
	mac.Write(signedReq)
	mac.Write(swarmOwnDomain)
	mac.Write(hdr[:])
	mac.Write(memDigest[:])
	mac.SumInto(out)
}

// SwarmFoldStart begins an aggregate fold over mac (keyed with the
// folding member's K_Attest), absorbing the member's own tag. Child
// aggregates follow via SwarmFoldChild in child order; SwarmFoldFinish
// emits the tag. A node with no present children skips the fold entirely
// and uses own_i as its aggregate.
func SwarmFoldStart(mac *hmac.MAC, own *[sha1.Size]byte) {
	mac.Reset()
	mac.Write(swarmFoldDomain)
	mac.Write(own[:])
}

// SwarmFoldChild absorbs one present child's aggregate tag.
func SwarmFoldChild(mac *hmac.MAC, childAgg *[sha1.Size]byte) {
	mac.Write(childAgg[:])
}

// SwarmFoldFinish finalises the fold into out without allocating.
func SwarmFoldFinish(mac *hmac.MAC, out *[sha1.Size]byte) {
	mac.SumInto(out)
}
