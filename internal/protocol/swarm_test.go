package protocol

import (
	"bytes"
	"testing"

	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/sha1"
)

func TestSwarmReqRoundTrip(t *testing.T) {
	req := &SwarmReq{OwnOnly: true, Root: 42, Nonce: 7, TreeID: 99}
	req.Sign([]byte("swarm-key"))
	wire := req.Encode()

	got, err := DecodeSwarmReq(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.OwnOnly != req.OwnOnly || got.Root != req.Root || got.Nonce != req.Nonce || got.TreeID != req.TreeID {
		t.Fatalf("fields mismatch: got %+v want %+v", got, req)
	}
	if !bytes.Equal(got.Tag, req.Tag) {
		t.Fatalf("tag mismatch")
	}
	if !bytes.Equal(got.Encode(), wire) {
		t.Fatalf("re-encode differs")
	}

	var into SwarmReq
	if err := DecodeSwarmReqInto(wire, &into); err != nil {
		t.Fatalf("decode-into: %v", err)
	}
	if !bytes.Equal(into.Encode(), wire) {
		t.Fatalf("decode-into re-encode differs")
	}
}

func TestSwarmReqSignedBytesExcludeTag(t *testing.T) {
	req := &SwarmReq{Root: 3, Nonce: 1, TreeID: 2}
	signed := req.SignedBytes()
	req.Sign([]byte("k"))
	if !bytes.Equal(signed, req.SignedBytes()) {
		t.Fatalf("signing changed the signed bytes")
	}
	if !bytes.Equal(signed, req.AppendSignedBytes(nil)) {
		t.Fatalf("AppendSignedBytes differs from SignedBytes")
	}
	// Root and OwnOnly sit inside the MAC: flipping either must change
	// the signed image.
	other := &SwarmReq{Root: 4, Nonce: 1, TreeID: 2}
	if bytes.Equal(signed, other.SignedBytes()) {
		t.Fatalf("root not covered by signed bytes")
	}
	probe := &SwarmReq{OwnOnly: true, Root: 3, Nonce: 1, TreeID: 2}
	if bytes.Equal(signed, probe.SignedBytes()) {
		t.Fatalf("own-only flag not covered by signed bytes")
	}
}

func TestSwarmReqDecodeRejects(t *testing.T) {
	good := (&SwarmReq{Root: 1, Nonce: 2, TreeID: 3}).Encode()
	var r SwarmReq
	cases := map[string][]byte{
		"short":         good[:10],
		"magic":         append([]byte{0x00}, good[1:]...),
		"version":       mutateAt(good, 2, 0x7F),
		"reserved-flag": mutateAt(good, 3, 0x80),
		"reserved-byte": mutateAt(good, 6, 0x01),
		"taglen":        mutateAt(good, 24, 0xFF),
	}
	for name, buf := range cases {
		if err := DecodeSwarmReqInto(buf, &r); err == nil {
			t.Errorf("%s: accepted malformed request", name)
		}
		if _, err := DecodeSwarmReq(buf); err == nil {
			t.Errorf("%s: DecodeSwarmReq accepted malformed request", name)
		}
	}
}

func TestSwarmRespRoundTrip(t *testing.T) {
	resp := &SwarmResp{Depth: 3, Root: 9, Nonce: 77}
	for i := range resp.Aggregate {
		resp.Aggregate[i] = byte(i * 7)
	}
	resp.Bitmap = make([]byte, SwarmBitmapLen(64))
	SetSwarmBit(resp.Bitmap, 0)
	SetSwarmBit(resp.Bitmap, 63)
	wire := resp.Encode()

	got, err := DecodeSwarmResp(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Depth != resp.Depth || got.Root != resp.Root || got.Nonce != resp.Nonce {
		t.Fatalf("fields mismatch: got %+v want %+v", got, resp)
	}
	if got.Aggregate != resp.Aggregate || !bytes.Equal(got.Bitmap, resp.Bitmap) {
		t.Fatalf("payload mismatch")
	}
	if !SwarmBit(got.Bitmap, 0) || !SwarmBit(got.Bitmap, 63) || SwarmBit(got.Bitmap, 5) {
		t.Fatalf("bitmap bits wrong")
	}
	if SwarmBit(got.Bitmap, 1000) {
		t.Fatalf("out-of-range bit reads as set")
	}
	if !bytes.Equal(got.Encode(), wire) {
		t.Fatalf("re-encode differs")
	}

	var into SwarmResp
	into.Bitmap = make([]byte, 0, 64)
	if err := DecodeSwarmRespInto(wire, &into); err != nil {
		t.Fatalf("decode-into: %v", err)
	}
	if !bytes.Equal(into.Encode(), wire) {
		t.Fatalf("decode-into re-encode differs")
	}
}

func TestSwarmRespDecodeRejects(t *testing.T) {
	good := (&SwarmResp{Depth: 1, Root: 2, Nonce: 3, Bitmap: []byte{0xFF}}).Encode()
	var r SwarmResp
	cases := map[string][]byte{
		"short":  good[:8],
		"magic":  mutateAt(good, 1, 0x00),
		"ver":    mutateAt(good, 2, 0x09),
		"bmlen":  mutateAt(good, 6, 0x40),
		"padded": append(append([]byte(nil), good...), 0x00),
	}
	for name, buf := range cases {
		if err := DecodeSwarmRespInto(buf, &r); err == nil {
			t.Errorf("%s: accepted malformed response", name)
		}
		if _, err := DecodeSwarmResp(buf); err == nil {
			t.Errorf("%s: DecodeSwarmResp accepted malformed response", name)
		}
	}
}

func mutateAt(buf []byte, i int, v byte) []byte {
	out := append([]byte(nil), buf...)
	out[i] = v
	return out
}

func TestClassifySwarmFrames(t *testing.T) {
	req := (&SwarmReq{Root: 1}).Encode()
	resp := (&SwarmResp{Root: 1}).Encode()
	if k := ClassifyFrame(req); k != FrameSwarmReq {
		t.Fatalf("swarm request classified as %v", k)
	}
	if k := ClassifyFrame(resp); k != FrameSwarmResp {
		t.Fatalf("swarm response classified as %v", k)
	}
}

// TestSwarmTagDerivation pins the three-layer derivation: fast (stored
// digest) and full (fresh measurement) own tags agree on identical
// memory, differ across members, epochs, requests and content, and the
// fold is order-sensitive and keyed.
func TestSwarmTagDerivation(t *testing.T) {
	keyA := []byte("device-key-a")
	keyB := []byte("device-key-b")
	mem := bytes.Repeat([]byte{0x5A}, 256)
	req := &SwarmReq{Root: 0, Nonce: 1, TreeID: 1}
	signed := req.SignedBytes()

	digA := SwarmMemDigest(keyA, mem)
	macA := hmac.NewSHA1(keyA)
	var digA2 [sha1.Size]byte
	SwarmMemDigestInto(macA, mem, &digA2)
	if digA != digA2 {
		t.Fatalf("SwarmMemDigest and SwarmMemDigestInto disagree")
	}
	if digA == SwarmMemDigest(keyB, mem) {
		t.Fatalf("mem digest not keyed per device")
	}

	var own1, own2 [sha1.Size]byte
	SwarmOwnTagInto(macA, signed, 0, 1, &digA, &own1)
	SwarmOwnTagInto(macA, signed, 0, 1, &digA, &own2)
	if own1 != own2 {
		t.Fatalf("own tag not deterministic")
	}
	SwarmOwnTagInto(macA, signed, 1, 1, &digA, &own2)
	if own1 == own2 {
		t.Fatalf("own tag ignores member index")
	}
	SwarmOwnTagInto(macA, signed, 0, 2, &digA, &own2)
	if own1 == own2 {
		t.Fatalf("own tag ignores epoch")
	}
	other := &SwarmReq{Root: 0, Nonce: 2, TreeID: 1}
	SwarmOwnTagInto(macA, other.SignedBytes(), 0, 1, &digA, &own2)
	if own1 == own2 {
		t.Fatalf("own tag ignores the signed request")
	}

	var childX, childY [sha1.Size]byte
	childX[0], childY[0] = 1, 2
	var fold1, fold2 [sha1.Size]byte
	SwarmFoldStart(macA, &own1)
	SwarmFoldChild(macA, &childX)
	SwarmFoldChild(macA, &childY)
	SwarmFoldFinish(macA, &fold1)

	SwarmFoldStart(macA, &own1)
	SwarmFoldChild(macA, &childY)
	SwarmFoldChild(macA, &childX)
	SwarmFoldFinish(macA, &fold2)
	if fold1 == fold2 {
		t.Fatalf("fold ignores child order")
	}

	macB := hmac.NewSHA1(keyB)
	SwarmFoldStart(macB, &own1)
	SwarmFoldChild(macB, &childX)
	SwarmFoldChild(macB, &childY)
	SwarmFoldFinish(macB, &fold2)
	if fold1 == fold2 {
		t.Fatalf("fold not keyed per device")
	}
}

func TestDeriveSwarmKey(t *testing.T) {
	a := DeriveSwarmKey([]byte("master-a"))
	b := DeriveSwarmKey([]byte("master-b"))
	if a == b {
		t.Fatalf("swarm key ignores the master secret")
	}
	dev := DeriveDeviceKey([]byte("master-a"), "K_Swarm")
	if a == dev {
		t.Fatalf("swarm key collides with the device-key derivation domain")
	}
}
