package protocol

import (
	"errors"
	"fmt"

	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/sha1"
)

// Verifier is the trusted party Vrf. It issues authenticated, fresh
// attestation requests and validates measurement responses against a
// golden image of the prover's measured memory.
type Verifier struct {
	freshness FreshnessKind
	auth      Authenticator
	attestKey []byte
	golden    []byte
	clock     func() uint64 // verifier-side clock, prover-clock milliseconds

	counter     uint64
	nonceSeq    uint64
	pending     map[uint64]*pendingAtt // outstanding requests by nonce
	pendingCmds map[uint64]*CommandReq // outstanding service commands

	// Fast-path state: the digest and monitor epoch of the last verified
	// *full* measurement. A fast response is accepted only against this
	// record — the verifier never trusts a prover's cleanliness claim, it
	// checks the claim against what it verified itself. haveFast is false
	// until a full measurement has been accepted (and again after any fast
	// mismatch), so cold start, daemon restart and desync all resolve the
	// same way: the next request demands a full MAC.
	allowFast  bool
	fastEpoch  uint32
	fastDigest [sha1.Size]byte
	haveFast   bool

	// Stats for scenario reporting.
	Issued       uint64
	Accepted     uint64
	Rejected     uint64
	Unsolicited  uint64
	Expired      uint64 // requests abandoned after a response timeout
	FastAccepted uint64 // accepted via the O(1) fast path (subset of Accepted)
	FastRejected uint64 // fast responses refused (subset of Rejected)
}

// VerifierConfig assembles a verifier.
type VerifierConfig struct {
	// Freshness is the mechanism stamped into requests.
	Freshness FreshnessKind
	// Auth signs requests. Use NoAuth{} for the unauthenticated strawman.
	Auth Authenticator
	// AttestKey is K_Attest, shared with the prover's trust anchor, used
	// to validate measurement responses.
	AttestKey []byte
	// Golden is the expected content of the prover's measured memory.
	Golden []byte
	// Clock returns the verifier's current time in prover-clock
	// milliseconds. Timestamp freshness assumes the two clocks are
	// synchronised (§4.2); drift experiments perturb this function.
	Clock func() uint64
	// AllowFastPath permits provers with a write monitor to answer with
	// the O(1) fast-path MAC once a full measurement has been verified.
	AllowFastPath bool
}

// NewVerifier validates the configuration and builds the verifier.
func NewVerifier(cfg VerifierConfig) (*Verifier, error) {
	if cfg.Auth == nil {
		return nil, errors.New("protocol: verifier needs an authenticator")
	}
	if len(cfg.AttestKey) == 0 {
		return nil, errors.New("protocol: verifier needs K_Attest for response validation")
	}
	if cfg.Freshness == FreshTimestamp && cfg.Clock == nil {
		return nil, errors.New("protocol: timestamp freshness needs a clock")
	}
	v := &Verifier{
		freshness:   cfg.Freshness,
		auth:        cfg.Auth,
		attestKey:   append([]byte(nil), cfg.AttestKey...),
		golden:      append([]byte(nil), cfg.Golden...),
		clock:       cfg.Clock,
		allowFast:   cfg.AllowFastPath,
		pending:     make(map[uint64]*pendingAtt),
		pendingCmds: make(map[uint64]*CommandReq),
	}
	return v, nil
}

// pendingAtt is one outstanding attestation request plus the memoized
// measurement expected in its response. The expectation is an HMAC over
// the whole golden image, so it is computed at most once per request — on
// the first response claiming the nonce — rather than on every claim: a
// peer spamming bad responses against a known outstanding nonce costs the
// verifier one golden-image MAC total, not one per frame.
type pendingAtt struct {
	req      *AttReq
	want     [sha1.Size]byte
	haveWant bool

	// wantFast is the only fast MAC this request will accept, precomputed
	// at issue time from the verifier's own fast state (cheap: the input
	// is ~70 bytes, not the memory image). Precomputing here keeps the
	// per-frame fast accept a single constant-time compare — zero
	// allocations under hostile response traffic.
	wantFast     [sha1.Size]byte
	haveFastWant bool
}

// NewRequest builds and signs the next attestation request. When the fast
// path is enabled and a prior full measurement has been verified, the
// request grants fast-path permission and memoizes the one fast MAC it
// would accept.
func (v *Verifier) NewRequest() (*AttReq, error) {
	v.nonceSeq++
	req := &AttReq{
		Freshness: v.freshness,
		Auth:      v.auth.Kind(),
		Nonce:     v.nonceSeq,
		AllowFast: v.allowFast && v.haveFast,
	}
	switch v.freshness {
	case FreshCounter:
		v.counter++
		req.Counter = v.counter
	case FreshTimestamp:
		req.Timestamp = v.clock()
	}
	tag, err := v.auth.Sign(req.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("protocol: signing request: %w", err)
	}
	req.Tag = tag
	p := &pendingAtt{req: req}
	if req.AllowFast {
		p.wantFast = FastMAC(v.attestKey, req, v.fastEpoch, &v.fastDigest)
		p.haveFastWant = true
	}
	v.pending[req.Nonce] = p
	v.Issued++
	return req, nil
}

// ExpectedMeasurement computes the measurement the prover should report
// for req over the golden memory image: HMAC-SHA1(K_Attest, signed-request
// ‖ memory). Binding the request into the MAC prevents response replay.
func (v *Verifier) ExpectedMeasurement(req *AttReq) [sha1.Size]byte {
	return Measure(v.attestKey, req, v.golden)
}

// Measure is the measurement function shared by verifier and trust anchor.
func Measure(attestKey []byte, req *AttReq, memory []byte) [sha1.Size]byte {
	m := hmac.NewSHA1(attestKey)
	m.Write(req.SignedBytes())
	m.Write(memory)
	var out [sha1.Size]byte
	copy(out[:], m.Sum(nil))
	return out
}

// Static check errors, pre-allocated so the hot rejection branches of
// CheckDecodedResponse stay allocation-free under hostile traffic.
var (
	// ErrUnsolicited marks a response that answers no outstanding nonce.
	ErrUnsolicited = errors.New("protocol: response to unknown nonce")
	// ErrMeasurementMismatch marks a response whose measurement deviates
	// from the golden image.
	ErrMeasurementMismatch = errors.New("protocol: measurement mismatch — prover state deviates from golden image")
	// ErrFastMismatch marks a fast-path response that does not match the
	// verifier's record of the last verified digest and epoch (or arrived
	// when no fast path was offered). The verifier drops its fast state,
	// so subsequent requests demand the full-memory MAC.
	ErrFastMismatch = errors.New("protocol: fast-path response does not match verified digest/epoch record")
)

// CheckResponse validates a raw response frame. A response is accepted
// when it matches an outstanding request's nonce and carries the expected
// measurement; the request is then retired.
func (v *Verifier) CheckResponse(raw []byte) (bool, error) {
	resp, err := DecodeAttResp(raw)
	if err != nil {
		v.Rejected++
		return false, err
	}
	return v.CheckDecodedResponse(resp)
}

// CheckDecodedResponse validates an already-decoded response — the
// zero-allocation half of CheckResponse, for callers (internal/server)
// that decode outside the verifier lock with DecodeAttRespInto. The
// response is only read, never retained.
func (v *Verifier) CheckDecodedResponse(resp *AttResp) (bool, error) {
	p, ok := v.pending[resp.Nonce]
	if !ok {
		v.Unsolicited++
		return false, ErrUnsolicited
	}
	if resp.Fast {
		// Fast responses are only accepted against the MAC memoized at
		// issue time, which binds the epoch and digest the verifier
		// itself recorded from the last accepted full measurement. A
		// prover lying about cleanliness — its epoch advanced past the
		// verified record, or its digest never verified — lands here.
		if !p.haveFastWant || !hmac.Equal(p.wantFast[:], resp.Measurement[:]) {
			v.Rejected++
			v.FastRejected++
			v.haveFast = false
			return false, ErrFastMismatch
		}
		delete(v.pending, resp.Nonce)
		v.Accepted++
		v.FastAccepted++
		return true, nil
	}
	if !p.haveWant {
		p.want = v.ExpectedMeasurement(p.req)
		p.haveWant = true
	}
	if !hmac.Equal(p.want[:], resp.Measurement[:]) {
		v.Rejected++
		// A deviating prover must stay on the full MAC until a verified
		// full measurement re-establishes trust.
		v.haveFast = false
		return false, ErrMeasurementMismatch
	}
	delete(v.pending, resp.Nonce)
	v.Accepted++
	// A verified full measurement from a monitor-equipped prover (epoch
	// nonzero: the rearm that preceded this measurement) establishes the
	// record fast responses will be checked against.
	if v.allowFast && resp.Epoch != 0 {
		v.fastDigest = p.want
		v.fastEpoch = resp.Epoch
		v.haveFast = true
	}
	return true, nil
}

// DropFastState discards the verifier's fast-path arm record, forcing the
// device's next attestation round to demand (and verify) a full memory
// MAC. This is the force-reattest primitive: an operator who suspects a
// device re-establishes ground truth instead of trusting the O(1)
// unchanged-since-last-attest claim. A verifier with no record is a no-op;
// the report says whether anything was dropped.
func (v *Verifier) DropFastState() bool {
	had := v.haveFast
	v.haveFast = false
	return had
}

// HasFastState reports whether the verifier holds a verified digest/epoch
// record, i.e. whether its next request will grant fast-path permission.
func (v *Verifier) HasFastState() bool { return v.haveFast }

// NewCommand builds and signs a service command (secure update, secure
// erase, clock sync). Commands draw from the same nonce, counter and
// timestamp streams as attestation requests — the prover keeps one
// freshness state for everything, so an adversary cannot replay a command
// "around" the attestation counter.
func (v *Verifier) NewCommand(kind CommandKind, body []byte) (*CommandReq, error) {
	v.nonceSeq++
	req := &CommandReq{
		Kind:      kind,
		Freshness: v.freshness,
		Auth:      v.auth.Kind(),
		Nonce:     v.nonceSeq,
		Body:      append([]byte(nil), body...),
	}
	switch v.freshness {
	case FreshCounter:
		v.counter++
		req.Counter = v.counter
	case FreshTimestamp:
		req.Timestamp = v.clock()
	}
	tag, err := v.auth.Sign(req.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("protocol: signing command: %w", err)
	}
	req.Tag = tag
	v.pendingCmds[req.Nonce] = req
	v.Issued++
	return req, nil
}

// CheckCommandResponse validates a raw command-response frame: it must
// answer an outstanding command and carry a valid K_Attest tag. The
// command is retired on success (any status), since the anchor
// authenticated its verdict either way.
func (v *Verifier) CheckCommandResponse(raw []byte) (*CommandResp, error) {
	resp, err := DecodeCommandResp(raw)
	if err != nil {
		v.Rejected++
		return nil, err
	}
	req, ok := v.pendingCmds[resp.Nonce]
	if !ok {
		v.Unsolicited++
		return nil, fmt.Errorf("protocol: command response to unknown nonce %d", resp.Nonce)
	}
	if resp.Kind != req.Kind {
		v.Rejected++
		return nil, fmt.Errorf("protocol: command response kind %v for a %v command", resp.Kind, req.Kind)
	}
	if !resp.VerifyTag(v.attestKey) {
		v.Rejected++
		return nil, errors.New("protocol: command response tag invalid")
	}
	delete(v.pendingCmds, resp.Nonce)
	v.Accepted++
	return resp, nil
}

// Outstanding reports how many requests await responses.
func (v *Verifier) Outstanding() int { return len(v.pending) + len(v.pendingCmds) }

// IsPending reports whether the attestation request with the given nonce
// still awaits a response — the retry loop's liveness probe.
func (v *Verifier) IsPending(nonce uint64) bool {
	_, ok := v.pending[nonce]
	return ok
}

// Abandon retires an unanswered request after a timeout, so a retry can
// take its place. Retries must be *new* requests: with counter freshness
// the prover may already have consumed the old counter (request processed,
// response lost), and re-sending the identical frame would be rejected as
// a replay — the at-most-once property working as intended.
func (v *Verifier) Abandon(nonce uint64) bool {
	if _, ok := v.pending[nonce]; !ok {
		return false
	}
	delete(v.pending, nonce)
	v.Expired++
	return true
}

// IsCommandPending reports whether the service command with the given
// nonce still awaits a response.
func (v *Verifier) IsCommandPending(nonce uint64) bool {
	_, ok := v.pendingCmds[nonce]
	return ok
}

// AbandonCommand retires an unanswered service command after a timeout,
// mirroring Abandon for the command map. The two maps are deliberately
// separate retirement paths: an attestation nonce and a command nonce never
// collide (one nonceSeq feeds both), but a response of the wrong type must
// not retire the other map's entry.
func (v *Verifier) AbandonCommand(nonce uint64) bool {
	if _, ok := v.pendingCmds[nonce]; !ok {
		return false
	}
	delete(v.pendingCmds, nonce)
	v.Expired++
	return true
}

// LastCounter reports the verifier's counter state (for tests).
func (v *Verifier) LastCounter() uint64 { return v.counter }

// VerifierState is the portable freshness record of one device's
// verifier: everything a different daemon needs to continue the device's
// nonce/counter stream without ever re-issuing a value the device has
// already seen, plus the RATA fast-path arm record. Outstanding requests
// are deliberately not part of the state — they are bound to the
// connection that issued them and die with it (the issuing daemon's
// abandon timers retire them), while the streams below are what replay
// protection is built on and must survive.
type VerifierState struct {
	Counter  uint64
	NonceSeq uint64

	// Fast-path arm record: the digest/epoch of the last verified full
	// measurement. Valid only when HaveFast.
	FastEpoch  uint32
	FastDigest [sha1.Size]byte
	HaveFast   bool
}

// ExportState snapshots the verifier's freshness and fast-path state for
// handoff to another daemon.
func (v *Verifier) ExportState() VerifierState {
	return VerifierState{
		Counter:    v.counter,
		NonceSeq:   v.nonceSeq,
		FastEpoch:  v.fastEpoch,
		FastDigest: v.fastDigest,
		HaveFast:   v.haveFast,
	}
}

// ImportState adopts a handed-off freshness record, replacing the
// verifier's own. Any outstanding requests are dropped (an importing
// daemon has none of its own; a previous owner's pending nonces must not
// be answerable here). The fast-path arm record is honoured only if this
// verifier allows the fast path at all.
//
// Callers importing from a *replica* rather than from the live owner must
// add a safety margin to Counter/NonceSeq and clear HaveFast first — see
// cluster.Snapshot.JumpForReplica — because a replica may lag the owner's
// true stream position. Both streams are strictly monotone, so jumping
// forward is always freshness-safe; the cost of a cleared fast record is
// exactly one full-MAC round.
func (v *Verifier) ImportState(st VerifierState) {
	v.counter = st.Counter
	v.nonceSeq = st.NonceSeq
	v.fastEpoch = st.FastEpoch
	v.fastDigest = st.FastDigest
	v.haveFast = st.HaveFast && v.allowFast
	clear(v.pending)
	clear(v.pendingCmds)
}

// DeriveDeviceKey derives a per-device K_Attest from the deployment's
// master secret: HMAC-SHA1(master, "K_Attest" ‖ deviceID). Fleet
// deployments must not share one key across provers — a single roaming
// compromise would otherwise let the adversary impersonate the verifier
// to the whole fleet.
func DeriveDeviceKey(master []byte, deviceID string) [sha1.Size]byte {
	m := hmac.NewSHA1(master)
	m.Write([]byte("K_Attest"))
	m.Write([]byte(deviceID))
	var out [sha1.Size]byte
	copy(out[:], m.Sum(nil))
	return out
}
