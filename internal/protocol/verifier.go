package protocol

import (
	"errors"
	"fmt"

	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/sha1"
)

// Verifier is the trusted party Vrf. It issues authenticated, fresh
// attestation requests and validates measurement responses against a
// golden image of the prover's measured memory.
type Verifier struct {
	freshness FreshnessKind
	auth      Authenticator
	attestKey []byte
	golden    []byte
	clock     func() uint64 // verifier-side clock, prover-clock milliseconds

	counter     uint64
	nonceSeq    uint64
	pending     map[uint64]*pendingAtt // outstanding requests by nonce
	pendingCmds map[uint64]*CommandReq // outstanding service commands

	// Stats for scenario reporting.
	Issued      uint64
	Accepted    uint64
	Rejected    uint64
	Unsolicited uint64
	Expired     uint64 // requests abandoned after a response timeout
}

// VerifierConfig assembles a verifier.
type VerifierConfig struct {
	// Freshness is the mechanism stamped into requests.
	Freshness FreshnessKind
	// Auth signs requests. Use NoAuth{} for the unauthenticated strawman.
	Auth Authenticator
	// AttestKey is K_Attest, shared with the prover's trust anchor, used
	// to validate measurement responses.
	AttestKey []byte
	// Golden is the expected content of the prover's measured memory.
	Golden []byte
	// Clock returns the verifier's current time in prover-clock
	// milliseconds. Timestamp freshness assumes the two clocks are
	// synchronised (§4.2); drift experiments perturb this function.
	Clock func() uint64
}

// NewVerifier validates the configuration and builds the verifier.
func NewVerifier(cfg VerifierConfig) (*Verifier, error) {
	if cfg.Auth == nil {
		return nil, errors.New("protocol: verifier needs an authenticator")
	}
	if len(cfg.AttestKey) == 0 {
		return nil, errors.New("protocol: verifier needs K_Attest for response validation")
	}
	if cfg.Freshness == FreshTimestamp && cfg.Clock == nil {
		return nil, errors.New("protocol: timestamp freshness needs a clock")
	}
	v := &Verifier{
		freshness:   cfg.Freshness,
		auth:        cfg.Auth,
		attestKey:   append([]byte(nil), cfg.AttestKey...),
		golden:      append([]byte(nil), cfg.Golden...),
		clock:       cfg.Clock,
		pending:     make(map[uint64]*pendingAtt),
		pendingCmds: make(map[uint64]*CommandReq),
	}
	return v, nil
}

// pendingAtt is one outstanding attestation request plus the memoized
// measurement expected in its response. The expectation is an HMAC over
// the whole golden image, so it is computed at most once per request — on
// the first response claiming the nonce — rather than on every claim: a
// peer spamming bad responses against a known outstanding nonce costs the
// verifier one golden-image MAC total, not one per frame.
type pendingAtt struct {
	req      *AttReq
	want     [sha1.Size]byte
	haveWant bool
}

// NewRequest builds and signs the next attestation request.
func (v *Verifier) NewRequest() (*AttReq, error) {
	v.nonceSeq++
	req := &AttReq{
		Freshness: v.freshness,
		Auth:      v.auth.Kind(),
		Nonce:     v.nonceSeq,
	}
	switch v.freshness {
	case FreshCounter:
		v.counter++
		req.Counter = v.counter
	case FreshTimestamp:
		req.Timestamp = v.clock()
	}
	tag, err := v.auth.Sign(req.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("protocol: signing request: %w", err)
	}
	req.Tag = tag
	v.pending[req.Nonce] = &pendingAtt{req: req}
	v.Issued++
	return req, nil
}

// ExpectedMeasurement computes the measurement the prover should report
// for req over the golden memory image: HMAC-SHA1(K_Attest, signed-request
// ‖ memory). Binding the request into the MAC prevents response replay.
func (v *Verifier) ExpectedMeasurement(req *AttReq) [sha1.Size]byte {
	return Measure(v.attestKey, req, v.golden)
}

// Measure is the measurement function shared by verifier and trust anchor.
func Measure(attestKey []byte, req *AttReq, memory []byte) [sha1.Size]byte {
	m := hmac.NewSHA1(attestKey)
	m.Write(req.SignedBytes())
	m.Write(memory)
	var out [sha1.Size]byte
	copy(out[:], m.Sum(nil))
	return out
}

// Static check errors, pre-allocated so the hot rejection branches of
// CheckDecodedResponse stay allocation-free under hostile traffic.
var (
	// ErrUnsolicited marks a response that answers no outstanding nonce.
	ErrUnsolicited = errors.New("protocol: response to unknown nonce")
	// ErrMeasurementMismatch marks a response whose measurement deviates
	// from the golden image.
	ErrMeasurementMismatch = errors.New("protocol: measurement mismatch — prover state deviates from golden image")
)

// CheckResponse validates a raw response frame. A response is accepted
// when it matches an outstanding request's nonce and carries the expected
// measurement; the request is then retired.
func (v *Verifier) CheckResponse(raw []byte) (bool, error) {
	resp, err := DecodeAttResp(raw)
	if err != nil {
		v.Rejected++
		return false, err
	}
	return v.CheckDecodedResponse(resp)
}

// CheckDecodedResponse validates an already-decoded response — the
// zero-allocation half of CheckResponse, for callers (internal/server)
// that decode outside the verifier lock with DecodeAttRespInto. The
// response is only read, never retained.
func (v *Verifier) CheckDecodedResponse(resp *AttResp) (bool, error) {
	p, ok := v.pending[resp.Nonce]
	if !ok {
		v.Unsolicited++
		return false, ErrUnsolicited
	}
	if !p.haveWant {
		p.want = v.ExpectedMeasurement(p.req)
		p.haveWant = true
	}
	if !hmac.Equal(p.want[:], resp.Measurement[:]) {
		v.Rejected++
		return false, ErrMeasurementMismatch
	}
	delete(v.pending, resp.Nonce)
	v.Accepted++
	return true, nil
}

// NewCommand builds and signs a service command (secure update, secure
// erase, clock sync). Commands draw from the same nonce, counter and
// timestamp streams as attestation requests — the prover keeps one
// freshness state for everything, so an adversary cannot replay a command
// "around" the attestation counter.
func (v *Verifier) NewCommand(kind CommandKind, body []byte) (*CommandReq, error) {
	v.nonceSeq++
	req := &CommandReq{
		Kind:      kind,
		Freshness: v.freshness,
		Auth:      v.auth.Kind(),
		Nonce:     v.nonceSeq,
		Body:      append([]byte(nil), body...),
	}
	switch v.freshness {
	case FreshCounter:
		v.counter++
		req.Counter = v.counter
	case FreshTimestamp:
		req.Timestamp = v.clock()
	}
	tag, err := v.auth.Sign(req.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("protocol: signing command: %w", err)
	}
	req.Tag = tag
	v.pendingCmds[req.Nonce] = req
	v.Issued++
	return req, nil
}

// CheckCommandResponse validates a raw command-response frame: it must
// answer an outstanding command and carry a valid K_Attest tag. The
// command is retired on success (any status), since the anchor
// authenticated its verdict either way.
func (v *Verifier) CheckCommandResponse(raw []byte) (*CommandResp, error) {
	resp, err := DecodeCommandResp(raw)
	if err != nil {
		v.Rejected++
		return nil, err
	}
	req, ok := v.pendingCmds[resp.Nonce]
	if !ok {
		v.Unsolicited++
		return nil, fmt.Errorf("protocol: command response to unknown nonce %d", resp.Nonce)
	}
	if resp.Kind != req.Kind {
		v.Rejected++
		return nil, fmt.Errorf("protocol: command response kind %v for a %v command", resp.Kind, req.Kind)
	}
	if !resp.VerifyTag(v.attestKey) {
		v.Rejected++
		return nil, errors.New("protocol: command response tag invalid")
	}
	delete(v.pendingCmds, resp.Nonce)
	v.Accepted++
	return resp, nil
}

// Outstanding reports how many requests await responses.
func (v *Verifier) Outstanding() int { return len(v.pending) + len(v.pendingCmds) }

// IsPending reports whether the attestation request with the given nonce
// still awaits a response — the retry loop's liveness probe.
func (v *Verifier) IsPending(nonce uint64) bool {
	_, ok := v.pending[nonce]
	return ok
}

// Abandon retires an unanswered request after a timeout, so a retry can
// take its place. Retries must be *new* requests: with counter freshness
// the prover may already have consumed the old counter (request processed,
// response lost), and re-sending the identical frame would be rejected as
// a replay — the at-most-once property working as intended.
func (v *Verifier) Abandon(nonce uint64) bool {
	if _, ok := v.pending[nonce]; !ok {
		return false
	}
	delete(v.pending, nonce)
	v.Expired++
	return true
}

// IsCommandPending reports whether the service command with the given
// nonce still awaits a response.
func (v *Verifier) IsCommandPending(nonce uint64) bool {
	_, ok := v.pendingCmds[nonce]
	return ok
}

// AbandonCommand retires an unanswered service command after a timeout,
// mirroring Abandon for the command map. The two maps are deliberately
// separate retirement paths: an attestation nonce and a command nonce never
// collide (one nonceSeq feeds both), but a response of the wrong type must
// not retire the other map's entry.
func (v *Verifier) AbandonCommand(nonce uint64) bool {
	if _, ok := v.pendingCmds[nonce]; !ok {
		return false
	}
	delete(v.pendingCmds, nonce)
	v.Expired++
	return true
}

// LastCounter reports the verifier's counter state (for tests).
func (v *Verifier) LastCounter() uint64 { return v.counter }

// DeriveDeviceKey derives a per-device K_Attest from the deployment's
// master secret: HMAC-SHA1(master, "K_Attest" ‖ deviceID). Fleet
// deployments must not share one key across provers — a single roaming
// compromise would otherwise let the adversary impersonate the verifier
// to the whole fleet.
func DeriveDeviceKey(master []byte, deviceID string) [sha1.Size]byte {
	m := hmac.NewSHA1(master)
	m.Write([]byte("K_Attest"))
	m.Write([]byte(deviceID))
	var out [sha1.Size]byte
	copy(out[:], m.Sum(nil))
	return out
}
