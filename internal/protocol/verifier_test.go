package protocol

import (
	"bytes"
	"testing"
)

func testVerifier(t *testing.T, fresh FreshnessKind) *Verifier {
	t.Helper()
	clock := uint64(0)
	v, err := NewVerifier(VerifierConfig{
		Freshness: fresh,
		Auth:      NewHMACAuth([]byte("request-auth-key")),
		AttestKey: []byte("k-attest-20-bytes!!!"),
		Golden:    bytes.Repeat([]byte{0x5A}, 1024),
		Clock:     func() uint64 { clock += 100; return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVerifierConfigValidation(t *testing.T) {
	if _, err := NewVerifier(VerifierConfig{AttestKey: []byte("k")}); err == nil {
		t.Error("verifier built without an authenticator")
	}
	if _, err := NewVerifier(VerifierConfig{Auth: NoAuth{}}); err == nil {
		t.Error("verifier built without K_Attest")
	}
	if _, err := NewVerifier(VerifierConfig{
		Auth: NoAuth{}, AttestKey: []byte("k"), Freshness: FreshTimestamp,
	}); err == nil {
		t.Error("timestamp verifier built without a clock")
	}
}

func TestNewRequestCounterMonotone(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	r1, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Counter != r1.Counter+1 {
		t.Fatalf("counters %d, %d — want strictly increasing by 1", r1.Counter, r2.Counter)
	}
	if r1.Nonce == r2.Nonce {
		t.Fatal("nonces repeat")
	}
	if v.Issued != 2 {
		t.Fatalf("Issued = %d, want 2", v.Issued)
	}
}

func TestNewRequestTimestampUsesClock(t *testing.T) {
	v := testVerifier(t, FreshTimestamp)
	r1, _ := v.NewRequest()
	r2, _ := v.NewRequest()
	if r2.Timestamp <= r1.Timestamp {
		t.Fatalf("timestamps %d, %d — want advancing clock", r1.Timestamp, r2.Timestamp)
	}
}

func TestRequestsAreAuthenticated(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	req, _ := v.NewRequest()
	auth := NewHMACAuth([]byte("request-auth-key"))
	if ok, _ := auth.Verify(req.SignedBytes(), req.Tag); !ok {
		t.Fatal("issued request's tag does not verify")
	}
}

func TestCheckResponseHappyPath(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	req, _ := v.NewRequest()
	// A well-behaved prover with the golden memory produces this:
	meas := Measure([]byte("k-attest-20-bytes!!!"), req, bytes.Repeat([]byte{0x5A}, 1024))
	resp := &AttResp{Nonce: req.Nonce, Counter: req.Counter, Measurement: meas}
	ok, err := v.CheckResponse(resp.Encode())
	if !ok || err != nil {
		t.Fatalf("CheckResponse = %v, %v", ok, err)
	}
	if v.Accepted != 1 || v.Outstanding() != 0 {
		t.Fatalf("Accepted=%d Outstanding=%d", v.Accepted, v.Outstanding())
	}
}

func TestCheckResponseRejectsWrongMemory(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	req, _ := v.NewRequest()
	tampered := bytes.Repeat([]byte{0x5A}, 1024)
	tampered[100] ^= 0xFF
	meas := Measure([]byte("k-attest-20-bytes!!!"), req, tampered)
	resp := &AttResp{Nonce: req.Nonce, Measurement: meas}
	if ok, _ := v.CheckResponse(resp.Encode()); ok {
		t.Fatal("measurement over deviating memory accepted")
	}
	if v.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", v.Rejected)
	}
	// The request stays outstanding — a failed response does not retire it.
	if v.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1", v.Outstanding())
	}
}

func TestCheckResponseRejectsWrongKey(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	req, _ := v.NewRequest()
	meas := Measure([]byte("wrong-key-wrong-key!"), req, bytes.Repeat([]byte{0x5A}, 1024))
	resp := &AttResp{Nonce: req.Nonce, Measurement: meas}
	if ok, _ := v.CheckResponse(resp.Encode()); ok {
		t.Fatal("measurement under wrong key accepted")
	}
}

func TestCheckResponseUnsolicited(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	resp := &AttResp{Nonce: 999}
	if ok, _ := v.CheckResponse(resp.Encode()); ok {
		t.Fatal("unsolicited response accepted")
	}
	if v.Unsolicited != 1 {
		t.Fatalf("Unsolicited = %d, want 1", v.Unsolicited)
	}
}

func TestCheckResponseGarbage(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	if ok, err := v.CheckResponse([]byte("not a response")); ok || err == nil {
		t.Fatal("garbage response accepted")
	}
}

func TestCheckResponseReplayedResponse(t *testing.T) {
	// A response can only retire its request once; replaying it is
	// unsolicited the second time.
	v := testVerifier(t, FreshCounter)
	req, _ := v.NewRequest()
	meas := Measure([]byte("k-attest-20-bytes!!!"), req, bytes.Repeat([]byte{0x5A}, 1024))
	raw := (&AttResp{Nonce: req.Nonce, Counter: req.Counter, Measurement: meas}).Encode()
	if ok, _ := v.CheckResponse(raw); !ok {
		t.Fatal("first response rejected")
	}
	if ok, _ := v.CheckResponse(raw); ok {
		t.Fatal("replayed response accepted")
	}
}

func TestMeasureBindsRequest(t *testing.T) {
	key := []byte("k")
	mem := []byte("memory")
	r1 := &AttReq{Nonce: 1}
	r2 := &AttReq{Nonce: 2}
	if Measure(key, r1, mem) == Measure(key, r2, mem) {
		t.Fatal("measurement does not bind the request — responses would be replayable")
	}
	if Measure(key, r1, mem) == Measure(key, r1, []byte("other!")) {
		t.Fatal("measurement does not bind the memory")
	}
}

func TestOutstandingCountsBothMaps(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	req, err := v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	cmd, err := v.NewCommand(CmdSecureErase, []byte("region"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d, want 2 (one request + one command)", v.Outstanding())
	}
	if req.Nonce == cmd.Nonce {
		t.Fatal("request and command drew the same nonce — the maps could shadow each other")
	}
	if !v.IsPending(req.Nonce) || v.IsPending(cmd.Nonce) {
		t.Fatalf("IsPending: req=%v cmd=%v, want true/false (attestation map only)",
			v.IsPending(req.Nonce), v.IsPending(cmd.Nonce))
	}
	if !v.IsCommandPending(cmd.Nonce) || v.IsCommandPending(req.Nonce) {
		t.Fatalf("IsCommandPending: cmd=%v req=%v, want true/false (command map only)",
			v.IsCommandPending(cmd.Nonce), v.IsCommandPending(req.Nonce))
	}
}

func TestAbandonTouchesOnlyAttestationMap(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	req, _ := v.NewRequest()
	cmd, _ := v.NewCommand(CmdClockSync, nil)

	if v.Abandon(cmd.Nonce) {
		t.Fatal("Abandon retired a command nonce — the maps must be independent")
	}
	if !v.Abandon(req.Nonce) {
		t.Fatal("Abandon refused a pending attestation nonce")
	}
	if v.Abandon(req.Nonce) {
		t.Fatal("Abandon retired the same nonce twice")
	}
	if v.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1 (the command survives)", v.Outstanding())
	}
	if v.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", v.Expired)
	}
}

func TestAbandonCommandTouchesOnlyCommandMap(t *testing.T) {
	v := testVerifier(t, FreshCounter)
	req, _ := v.NewRequest()
	cmd, _ := v.NewCommand(CmdSecureUpdate, []byte("img"))

	if v.AbandonCommand(req.Nonce) {
		t.Fatal("AbandonCommand retired an attestation nonce")
	}
	if !v.AbandonCommand(cmd.Nonce) {
		t.Fatal("AbandonCommand refused a pending command nonce")
	}
	if v.AbandonCommand(cmd.Nonce) {
		t.Fatal("AbandonCommand retired the same nonce twice")
	}
	if v.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1 (the attestation request survives)", v.Outstanding())
	}
	if v.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", v.Expired)
	}
	// A late response to the abandoned command is unsolicited, not accepted.
	resp := &CommandResp{Kind: CmdSecureUpdate, Status: StatusOK, Nonce: cmd.Nonce}
	resp.Seal([]byte("k-attest-20-bytes!!!"))
	if _, err := v.CheckCommandResponse(resp.Encode()); err == nil {
		t.Fatal("response to an abandoned command accepted")
	}
	if v.Unsolicited != 1 {
		t.Fatalf("Unsolicited = %d, want 1", v.Unsolicited)
	}
}

func TestAbandonedCommandAllowsRetry(t *testing.T) {
	// The retry discipline for commands mirrors attestation: abandon, then
	// issue a *new* command (fresh nonce/counter) rather than re-sending.
	v := testVerifier(t, FreshCounter)
	cmd1, _ := v.NewCommand(CmdSecureErase, []byte("r"))
	v.AbandonCommand(cmd1.Nonce)
	cmd2, err := v.NewCommand(CmdSecureErase, []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd2.Nonce == cmd1.Nonce || cmd2.Counter <= cmd1.Counter {
		t.Fatalf("retry reused nonce/counter: %d/%d after %d/%d",
			cmd2.Nonce, cmd2.Counter, cmd1.Nonce, cmd1.Counter)
	}
	resp := &CommandResp{Kind: CmdSecureErase, Status: StatusOK, Nonce: cmd2.Nonce}
	resp.Seal([]byte("k-attest-20-bytes!!!"))
	if _, err := v.CheckCommandResponse(resp.Encode()); err != nil {
		t.Fatalf("retried command's response rejected: %v", err)
	}
	if v.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0", v.Outstanding())
	}
}

// fastVerifier builds a fast-path-capable verifier for the handoff tests.
func fastVerifier(t *testing.T) *Verifier {
	t.Helper()
	v, err := NewVerifier(VerifierConfig{
		Freshness:     FreshCounter,
		Auth:          NewHMACAuth([]byte("request-auth-key")),
		AttestKey:     []byte("k-attest-20-bytes!!!"),
		Golden:        bytes.Repeat([]byte{0x5A}, 1024),
		AllowFastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestExportImportContinuesStream is the state-handoff round trip: a
// verifier that ran rounds exports, a fresh one imports, and the device
// sees one uninterrupted counter stream — including the fast-path arm
// record, so the importing daemon's first request can already grant the
// O(1) response.
func TestExportImportContinuesStream(t *testing.T) {
	golden := bytes.Repeat([]byte{0x5A}, 1024)
	key := []byte("k-attest-20-bytes!!!")

	v1 := fastVerifier(t)
	req1, _ := v1.NewRequest()
	if req1.AllowFast {
		t.Fatal("first request granted fast before any verified measurement")
	}
	meas := Measure(key, req1, golden)
	resp := &AttResp{Nonce: req1.Nonce, Counter: req1.Counter, Measurement: meas, Epoch: 7}
	if ok, err := v1.CheckResponse(resp.Encode()); !ok {
		t.Fatalf("full round rejected: %v", err)
	}
	if !v1.HasFastState() {
		t.Fatal("verified epoch-carrying measurement did not arm the fast state")
	}

	st := v1.ExportState()
	v2 := fastVerifier(t)
	v2.ImportState(st)

	req2, _ := v2.NewRequest()
	if req2.Counter != req1.Counter+1 {
		t.Errorf("imported verifier issued counter %d, want %d (stream continues)", req2.Counter, req1.Counter+1)
	}
	if req2.Nonce <= req1.Nonce {
		t.Errorf("imported verifier reused nonce space: %d after %d", req2.Nonce, req1.Nonce)
	}
	if !req2.AllowFast {
		t.Error("imported verifier lost the fast-path arm record")
	}
	// The device's stored digest is the last full measurement; the
	// imported record must accept exactly that fast response.
	fast := FastMAC(key, req2, 7, &meas)
	fresp := &AttResp{Fast: true, Epoch: 7, Nonce: req2.Nonce, Counter: req2.Counter, Measurement: fast}
	if ok, err := v2.CheckResponse(fresp.Encode()); !ok {
		t.Fatalf("fast response against the imported record rejected: %v", err)
	}
	if v2.FastAccepted != 1 {
		t.Fatalf("FastAccepted = %d, want 1", v2.FastAccepted)
	}
}

// TestImportDropsPendingAndGatesFast pins the import edge cases: a
// previous owner's outstanding nonces must not be answerable on the
// importer, and a verifier configured without the fast path never honours
// an imported arm record.
func TestImportDropsPendingAndGatesFast(t *testing.T) {
	golden := bytes.Repeat([]byte{0x5A}, 1024)
	key := []byte("k-attest-20-bytes!!!")

	v1 := fastVerifier(t)
	req, _ := v1.NewRequest() // outstanding at export time
	st := v1.ExportState()

	v2 := fastVerifier(t)
	v2.NewRequest() // own outstanding state, replaced by the import
	v2.ImportState(st)
	if v2.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after import, want 0", v2.Outstanding())
	}
	meas := Measure(key, req, golden)
	resp := &AttResp{Nonce: req.Nonce, Counter: req.Counter, Measurement: meas}
	if _, err := v2.CheckResponse(resp.Encode()); err == nil {
		t.Fatal("importer accepted a response to the previous owner's nonce")
	}

	// Arm fast on v1, then import into a full-MAC-only verifier.
	st2 := VerifierState{Counter: 50, NonceSeq: 60, FastEpoch: 3, HaveFast: true}
	plain := testVerifier(t, FreshCounter) // AllowFastPath false
	plain.ImportState(st2)
	if plain.HasFastState() {
		t.Error("full-MAC-only verifier honoured an imported fast record")
	}
	r, _ := plain.NewRequest()
	if r.Counter != 51 {
		t.Errorf("imported counter stream at %d, want 51", r.Counter)
	}
}
