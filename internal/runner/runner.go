// Package runner executes independent simulation cells — experiment units
// that each own a private sim.Kernel — across a bounded pool of OS-level
// workers. The attack×freshness matrix, the roaming campaigns, the flood
// and fleet sweeps and the ablation tables are all embarrassingly
// parallel: every cell builds its own kernel, runs it to completion and
// reports a result, sharing nothing. The runner exploits that shape while
// preserving the properties the experiment drivers rely on:
//
//   - results are collected in input order, regardless of completion
//     order, so a parallel campaign is byte-identical to the serial one;
//   - a panicking cell is converted into a structured per-cell error
//     (PanicError) instead of killing the whole campaign;
//   - each cell runs under a context that can carry a per-cell timeout,
//     and campaign-wide cancellation marks unstarted cells as cancelled;
//   - per-cell wall-clock and simulated-time figures are recorded, so a
//     campaign can report real speedup next to the virtual time it
//     covered.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"proverattest/internal/sim"
)

// Cell is one independent experiment: a label for reporting and a body
// that builds, runs and summarises its own simulation. The body must not
// share mutable state with other cells — each cell is executed on its own
// goroutine.
type Cell[T any] struct {
	// Label names the cell in errors and stats ("replay × counter").
	Label string
	// Run executes the cell. It should honour ctx where practical (cells
	// are also raced against ctx, so a cell that ignores cancellation is
	// abandoned rather than waited for). Run may record the simulated
	// time it covered in st.Sim for campaign reporting.
	Run func(ctx context.Context, st *CellStats) (T, error)
}

// CellStats is the per-cell scratchpad a cell body fills in while running.
type CellStats struct {
	// Sim is the span of simulated time the cell's kernel covered.
	Sim sim.Duration
}

// Result is the outcome of one cell, delivered at the cell's input index.
type Result[T any] struct {
	Index int
	Label string
	Value T
	// Err is non-nil when the cell returned an error, panicked
	// (*PanicError), timed out (context.DeadlineExceeded) or was
	// cancelled before it started (context.Canceled).
	Err error
	// Wall is the real time the cell took on its worker.
	Wall time.Duration
	// Sim is the simulated time the cell reported via CellStats.
	Sim sim.Duration
}

// PanicError is a cell panic converted into an error, with the stack of
// the panicking goroutine for post-mortem debugging.
type PanicError struct {
	Label string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: cell %q panicked: %v", e.Label, e.Value)
}

// Options bounds a campaign.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS. The pool never
	// exceeds the cell count.
	Workers int
	// CellTimeout bounds each cell's real execution time; 0 means no
	// limit. A cell that overruns is abandoned (its goroutine finishes in
	// the background and its result is discarded) and reported with
	// context.DeadlineExceeded.
	CellTimeout time.Duration
}

// CampaignStats summarises one Run for reporting.
type CampaignStats struct {
	Cells   int
	Workers int
	// Failed counts cells whose Result.Err is non-nil.
	Failed int
	// Wall is the campaign's real elapsed time.
	Wall time.Duration
	// CellWall is the sum of per-cell wall times — the serial-equivalent
	// cost, so CellWall/Wall approximates the achieved speedup.
	CellWall time.Duration
	// Sim is the total simulated time covered across all cells.
	Sim sim.Duration
}

// Speedup reports CellWall/Wall — how much faster the campaign ran than
// the same cells executed back to back.
func (s CampaignStats) Speedup() float64 {
	if s.Wall <= 0 {
		return 1
	}
	return float64(s.CellWall) / float64(s.Wall)
}

func (s CampaignStats) String() string {
	return fmt.Sprintf("%d cells on %d workers: %v wall (%v of cell work, %.1fx speedup), %v simulated",
		s.Cells, s.Workers, s.Wall.Round(time.Millisecond), s.CellWall.Round(time.Millisecond),
		s.Speedup(), s.Sim)
}

// Run executes every cell and returns the results in input order. It never
// returns an error itself: per-cell failures (including panics and
// timeouts) are reported in each Result.Err, so one broken scenario cannot
// take down the rest of a campaign. Use FirstErr to collapse the results
// into a single campaign error.
func Run[T any](ctx context.Context, cells []Cell[T], opts Options) ([]Result[T], CampaignStats) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]Result[T], len(cells))
	stats := CampaignStats{Cells: len(cells), Workers: workers}
	if len(cells) == 0 {
		return results, stats
	}

	start := time.Now()
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if err := ctx.Err(); err != nil {
					// Campaign cancelled: don't start the cell, but still
					// deliver a structured result at its slot.
					results[i] = Result[T]{Index: i, Label: cells[i].Label, Err: err}
					continue
				}
				results[i] = runCell(ctx, i, cells[i], opts.CellTimeout)
			}
		}()
	}
	for i := range cells {
		indices <- i
	}
	close(indices)
	wg.Wait()

	stats.Wall = time.Since(start)
	for i := range results {
		stats.CellWall += results[i].Wall
		stats.Sim += results[i].Sim
		if results[i].Err != nil {
			stats.Failed++
		}
	}
	return results, stats
}

// runCell executes one cell with panic recovery, racing it against its
// (possibly deadline-carrying) context.
func runCell[T any](ctx context.Context, index int, cell Cell[T], timeout time.Duration) Result[T] {
	cctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	// Buffered so an abandoned (timed-out) cell can still complete and
	// exit instead of blocking forever on the send.
	done := make(chan Result[T], 1)
	go func() {
		res := Result[T]{Index: index, Label: cell.Label}
		var st CellStats
		defer func() {
			if p := recover(); p != nil {
				res.Err = &PanicError{Label: cell.Label, Value: p, Stack: debug.Stack()}
			}
			res.Sim = st.Sim
			res.Wall = time.Since(start)
			done <- res
		}()
		res.Value, res.Err = cell.Run(cctx, &st)
	}()

	select {
	case res := <-done:
		return res
	case <-cctx.Done():
		return Result[T]{Index: index, Label: cell.Label, Err: cctx.Err(), Wall: time.Since(start)}
	}
}

// FirstErr returns the first failed cell's error, wrapped with its label,
// or nil when every cell succeeded.
func FirstErr[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return fmt.Errorf("runner: cell %d (%s): %w", results[i].Index, results[i].Label, results[i].Err)
		}
	}
	return nil
}

// Values extracts the cell values in input order, returning the first
// per-cell error (wrapped with its label) if any cell failed.
func Values[T any](results []Result[T]) ([]T, error) {
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]T, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out, nil
}
