package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"proverattest/internal/sim"
)

func TestResultsArriveInInputOrder(t *testing.T) {
	// Later cells finish first (earlier cells sleep longer); results must
	// still land at their input index.
	const n = 16
	cells := make([]Cell[int], n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell[int]{
			Label: fmt.Sprintf("cell-%d", i),
			Run: func(ctx context.Context, st *CellStats) (int, error) {
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	results, stats := Run(context.Background(), cells, Options{Workers: 8})
	if stats.Cells != n || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	for i, r := range results {
		if r.Index != i || r.Value != i*i || r.Err != nil {
			t.Fatalf("result %d = %+v, want value %d at index %d", i, r, i*i, i)
		}
		if r.Label != fmt.Sprintf("cell-%d", i) {
			t.Fatalf("result %d label = %q", i, r.Label)
		}
	}
}

func TestPanicBecomesPerCellError(t *testing.T) {
	cells := []Cell[string]{
		{Label: "ok-0", Run: func(ctx context.Context, st *CellStats) (string, error) { return "a", nil }},
		{Label: "boom", Run: func(ctx context.Context, st *CellStats) (string, error) {
			panic("scenario modelling bug")
		}},
		{Label: "ok-2", Run: func(ctx context.Context, st *CellStats) (string, error) { return "c", nil }},
	}
	results, stats := Run(context.Background(), cells, Options{Workers: 2})
	if stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", stats.Failed)
	}
	if results[0].Err != nil || results[0].Value != "a" {
		t.Fatalf("healthy cell 0 polluted: %+v", results[0])
	}
	if results[2].Err != nil || results[2].Value != "c" {
		t.Fatalf("healthy cell 2 polluted: %+v", results[2])
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("panicking cell error = %v, want *PanicError", results[1].Err)
	}
	if pe.Label != "boom" || pe.Value != "scenario modelling bug" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	if err := FirstErr(results); !errors.As(err, &pe) {
		t.Fatalf("FirstErr = %v, want the panic", err)
	}
}

func TestCellTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cells := []Cell[int]{
		{Label: "fast", Run: func(ctx context.Context, st *CellStats) (int, error) { return 1, nil }},
		{Label: "stuck", Run: func(ctx context.Context, st *CellStats) (int, error) {
			<-release // a runaway scenario that never yields
			return 2, nil
		}},
		{Label: "also-fast", Run: func(ctx context.Context, st *CellStats) (int, error) { return 3, nil }},
	}
	results, stats := Run(context.Background(), cells, Options{Workers: 3, CellTimeout: 20 * time.Millisecond})
	if !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Fatalf("stuck cell error = %v, want DeadlineExceeded", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("fast cells failed: %v / %v", results[0].Err, results[2].Err)
	}
	if stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", stats.Failed)
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any cell starts
	ran := false
	cells := []Cell[int]{
		{Label: "never", Run: func(ctx context.Context, st *CellStats) (int, error) {
			ran = true
			return 0, nil
		}},
	}
	results, stats := Run(ctx, cells, Options{Workers: 1})
	if ran {
		t.Fatal("cell ran under a cancelled campaign context")
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", results[0].Err)
	}
	if stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", stats.Failed)
	}
}

// kernelCell is a representative simulation cell: it builds a private
// kernel, runs a deterministic event cascade seeded by the cell index and
// summarises the timeline.
func kernelCell(seed int) Cell[string] {
	return Cell[string]{
		Label: fmt.Sprintf("sim-%d", seed),
		Run: func(ctx context.Context, st *CellStats) (string, error) {
			k := sim.NewKernel()
			var trace uint64
			for j := 0; j < 40; j++ {
				j := j
				k.After(sim.Duration((seed*31+j*17)%97)*sim.Millisecond, func() {
					trace = trace*31 + uint64(k.Now()) + uint64(j)
				})
			}
			k.Run()
			st.Sim = sim.Duration(k.Now())
			return fmt.Sprintf("seed=%d trace=%d end=%v", seed, trace, k.Now()), nil
		},
	}
}

func TestParallelCampaignByteIdenticalToSerial(t *testing.T) {
	// The determinism proof: a 64-cell campaign produces byte-identical
	// results on one worker and on many, in input order both times.
	const n = 64
	build := func() []Cell[string] {
		cells := make([]Cell[string], n)
		for i := range cells {
			cells[i] = kernelCell(i)
		}
		return cells
	}
	serial, _ := Run(context.Background(), build(), Options{Workers: 1})
	parallel, pstats := Run(context.Background(), build(), Options{Workers: 8})
	if pstats.Workers != 8 {
		t.Fatalf("workers = %d, want 8", pstats.Workers)
	}
	for i := range serial {
		if serial[i].Value != parallel[i].Value {
			t.Fatalf("cell %d diverged:\n serial:   %s\n parallel: %s",
				i, serial[i].Value, parallel[i].Value)
		}
		if parallel[i].Index != i {
			t.Fatalf("parallel result %d carries index %d", i, parallel[i].Index)
		}
	}
	sv, err := Values(serial)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := Values(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sv, pv) {
		t.Fatal("Values() diverged between serial and parallel runs")
	}
	// Aggregate simulated time is the sum of the per-cell spans.
	var wantSim sim.Duration
	for _, r := range serial {
		wantSim += r.Sim
	}
	if wantSim == 0 {
		t.Fatal("cells reported no simulated time")
	}
	if pstats.Sim != wantSim {
		t.Fatalf("aggregate sim time %v, want %v", pstats.Sim, wantSim)
	}
}

func TestWorkerCountClampedToCells(t *testing.T) {
	cells := []Cell[int]{
		{Label: "only", Run: func(ctx context.Context, st *CellStats) (int, error) { return 7, nil }},
	}
	_, stats := Run(context.Background(), cells, Options{Workers: 64})
	if stats.Workers != 1 {
		t.Fatalf("workers = %d, want clamp to 1", stats.Workers)
	}
}

func TestDefaultWorkersIsPositive(t *testing.T) {
	var cells []Cell[int]
	for i := 0; i < 4; i++ {
		cells = append(cells, Cell[int]{Label: "c", Run: func(ctx context.Context, st *CellStats) (int, error) { return 0, nil }})
	}
	_, stats := Run(context.Background(), cells, Options{})
	if stats.Workers < 1 {
		t.Fatalf("default workers = %d", stats.Workers)
	}
}

func TestEmptyCampaign(t *testing.T) {
	results, stats := Run[int](context.Background(), nil, Options{})
	if len(results) != 0 || stats.Cells != 0 || stats.Failed != 0 {
		t.Fatalf("empty campaign: results=%v stats=%+v", results, stats)
	}
	if err := FirstErr(results); err != nil {
		t.Fatalf("FirstErr on empty = %v", err)
	}
}

func TestValuesPropagatesError(t *testing.T) {
	sentinel := errors.New("cell failed")
	cells := []Cell[int]{
		{Label: "good", Run: func(ctx context.Context, st *CellStats) (int, error) { return 1, nil }},
		{Label: "bad", Run: func(ctx context.Context, st *CellStats) (int, error) { return 0, sentinel }},
	}
	results, _ := Run(context.Background(), cells, Options{Workers: 2})
	if _, err := Values(results); !errors.Is(err, sentinel) {
		t.Fatalf("Values error = %v, want wrapped sentinel", err)
	}
}

func TestStatsSpeedupAndString(t *testing.T) {
	s := CampaignStats{Cells: 4, Workers: 2, Wall: 100 * time.Millisecond, CellWall: 300 * time.Millisecond}
	if got := s.Speedup(); got < 2.9 || got > 3.1 {
		t.Fatalf("Speedup = %v, want ~3", got)
	}
	if (CampaignStats{}).Speedup() != 1 {
		t.Fatal("zero-wall speedup should degrade to 1")
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}
