package server

import (
	"context"
	"sort"

	"proverattest/internal/admin"
)

// This file implements admin.Controller on the daemon: the operational
// control plane's view of the device table, the tier policy and the drain
// machinery. Everything here is exposition/mutation-path code — it may
// take the per-device mutexes, but it never runs on the per-frame gate.

// AdminDevices lists every device this daemon holds state for, sorted by
// ID (implements admin.Controller).
func (s *Server) AdminDevices() []admin.DeviceInfo {
	out := make([]admin.DeviceInfo, 0, s.store.Len())
	s.store.Range(func(d *deviceState) bool {
		out = append(out, s.deviceInfo(d))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AdminDevice reports one device's control-plane view.
func (s *Server) AdminDevice(id string) (admin.DeviceInfo, bool) {
	d, ok := s.store.Get(id)
	if !ok {
		return admin.DeviceInfo{}, false
	}
	return s.deviceInfo(d), true
}

func (s *Server) deviceInfo(d *deviceState) admin.DeviceInfo {
	info := admin.DeviceInfo{ID: d.id}
	if tr := d.tier.Load(); tr != nil {
		info.Tier = tr.name
	}
	d.mu.Lock()
	st := d.v.ExportState()
	info.Outstanding = d.v.Outstanding()
	info.HandedOff = d.handedOff
	info.StatsEpochs = d.statsEpochs
	// Base + latest under one lock acquisition, same as AgentStats: a
	// reboot fold between the two reads would drop an epoch.
	stats := d.statsBase
	if last := d.lastStats.Load(); last != nil {
		stats.Accumulate(last)
	}
	d.mu.Unlock()
	info.Counter = st.Counter
	info.NonceSeq = st.NonceSeq
	info.FastArmed = st.HaveFast
	info.FastEpoch = st.FastEpoch
	info.Received = stats.Received
	info.Measurements = stats.Measurements
	info.FastHits = stats.FastResponses
	info.GateRejected = stats.GateRejected()
	return info
}

// AdminEvict removes a device's verifier state with the same move-out
// semantics as a cluster handoff: mark the entry a husk under its lock
// (no request can be issued after that point), drop it from the store
// (a PersistentStore tombstones it), and kick the issue loop so the
// session tears down now instead of at the next tick. The device's next
// connection builds fresh state — counter stream restarted, which is
// exactly what an operator evicting a suspect identity wants.
func (s *Server) AdminEvict(id string) bool {
	d, ok := s.store.Get(id)
	if !ok {
		return false
	}
	d.mu.Lock()
	if d.handedOff {
		d.mu.Unlock()
		return false
	}
	d.handedOff = true
	d.mu.Unlock()

	if _, removed := s.store.Remove(id); removed {
		s.deviceCount.Add(-1)
	}
	if tr := d.tier.Load(); tr != nil {
		tr.devices.Add(-1)
	}
	s.m.adminEvicts.Inc()
	d.kickIssue()
	return true
}

// AdminReattest drops the device's fast-path arm record and kicks its
// issue loop: the immediate next request demands — and its verdict
// verifies — a full golden-image MAC, re-establishing ground truth
// instead of trusting the O(1) unchanged-since-last-attest claim.
func (s *Server) AdminReattest(id string) bool {
	d, ok := s.store.Get(id)
	if !ok {
		return false
	}
	gone := false
	d.withLock(func() {
		if d.handedOff {
			gone = true
			return
		}
		d.v.DropFastState()
	})
	if gone {
		return false
	}
	// The arm record is part of the replicated/journaled snapshot; a
	// failover successor or restarted daemon must not resurrect it.
	if s.cl != nil {
		s.cl.Replicate(id)
	}
	if s.persist != nil {
		s.persist.MarkDirty(id)
	}
	s.m.adminReattests.Inc()
	d.kickIssue()
	return true
}

// AdminTiers lists the admission tiers in policy order.
func (s *Server) AdminTiers() []admin.TierStatus {
	out := make([]admin.TierStatus, 0, len(s.tiers.tiers))
	for _, t := range s.tiers.tiers {
		out = append(out, tierStatus(t))
	}
	return out
}

func tierStatus(t *tier) admin.TierStatus {
	rate, burst, connRate, connBurst := t.limits()
	return admin.TierStatus{
		Name:              t.name,
		Class:             t.class,
		Default:           t.isDefault,
		Match:             t.match,
		RatePerSec:        rate,
		Burst:             burst,
		PerConnRatePerSec: connRate,
		PerConnBurst:      connBurst,
		Admitted:          t.admitted.Load(),
		Limited:           t.limited.Load(),
		Devices:           t.devices.Load(),
	}
}

// AdminSetTier applies a runtime limit override to one tier. The
// tier-wide bucket is rebuilt immediately; per-connection budgets reach
// connections opened after the override (established sessions keep the
// bucket they were admitted with).
func (s *Server) AdminSetTier(name string, o admin.TierOverride) (admin.TierStatus, error) {
	t := s.tiers.byName(name)
	if t == nil {
		return admin.TierStatus{}, admin.ErrUnknownTier
	}
	keep := func(p *float64) float64 {
		if p == nil {
			return -1
		}
		return *p
	}
	t.setLimits(keep(o.RatePerSec), keep(o.Burst), keep(o.PerConnRatePerSec), keep(o.PerConnBurst))
	s.m.adminOverrides.Inc()
	return tierStatus(t), nil
}

// AdminDrain starts a graceful drain in the background: the
// Shutdown contract (refuse new connections, stop issuing, wait out the
// inflight verdicts, then close). The admin response returns immediately;
// /readyz flips to 503 for the duration, which is how a load balancer
// learns to stop sending traffic.
func (s *Server) AdminDrain() {
	s.m.adminDrains.Inc()
	go func() { _ = s.Shutdown(context.Background()) }()
}
