package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"proverattest/internal/admin"
	"proverattest/internal/cluster"
	"proverattest/internal/protocol"
	"proverattest/internal/transport"
)

// adminDo drives the daemon's real admin mux with a recorded request —
// the handlers and Controller implementation under test without an HTTP
// listener's goroutines muddying the leak checks.
func adminDo(t *testing.T, mux *http.ServeMux, method, path, token, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

// TestAdminEvictThenReattestOverTCP is the control-plane round trip over
// a real socket: an agent attests, the admin API evicts it (tearing the
// session down and dropping its state), the device reconnects and builds
// a fresh freshness stream, and a force-reattest lands on the rebuilt
// session. Mutations without the bearer token must change nothing.
func TestAdminEvictThenReattestOverTCP(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.AttestEvery = 20 * time.Millisecond
		c.RequestTimeout = 500 * time.Millisecond
	})
	mux := admin.NewMux(s, admin.Options{Token: "s3cret"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck

	dial := func() (chan struct{}, context.CancelFunc) {
		a := testAgent(t, "admin-dev")
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			a.Serve(ctx, nc) //nolint:errcheck
		}()
		return done, cancel
	}
	done, cancel := dial()
	defer cancel()
	waitFor(t, 10*time.Second, "first verdict", func() bool {
		return s.Counters().ResponsesAccepted >= 1
	})

	// The fleet listing shows the device, placed in the implicit default
	// tier (no TierPolicy configured).
	w := adminDo(t, mux, "GET", "/admin/devices", "", "")
	var fleet struct {
		Count   int                `json:"count"`
		Devices []admin.DeviceInfo `json:"devices"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Count != 1 || fleet.Devices[0].ID != "admin-dev" || fleet.Devices[0].Tier != "default" {
		t.Fatalf("fleet listing = %+v", fleet)
	}
	if fleet.Devices[0].Counter == 0 {
		t.Fatal("device info shows no freshness-stream progress after an accepted verdict")
	}

	// Unauthenticated evict: refused, device untouched.
	if w := adminDo(t, mux, "POST", "/admin/devices/admin-dev/evict", "", ""); w.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless evict = %d, want 401", w.Code)
	}
	if s.Devices() != 1 {
		t.Fatal("refused evict still removed the device")
	}

	// Authorized evict: state dropped, session torn down (the agent's
	// Serve returns when the daemon closes the connection).
	if w := adminDo(t, mux, "POST", "/admin/devices/admin-dev/evict", "s3cret", ""); w.Code != http.StatusOK {
		t.Fatalf("evict = %d: %s", w.Code, w.Body.String())
	}
	waitFor(t, 10*time.Second, "device table empty after evict", func() bool {
		return s.Devices() == 0
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("agent session survived the evict")
	}
	// Evicting an identity the daemon no longer knows is a 404.
	if w := adminDo(t, mux, "POST", "/admin/devices/admin-dev/evict", "s3cret", ""); w.Code != http.StatusNotFound {
		t.Fatalf("evict of unknown device = %d, want 404", w.Code)
	}

	// Reconnect: the identity is admitted again with rebuilt state.
	accepted := s.Counters().ResponsesAccepted
	_, cancel2 := dial()
	defer cancel2()
	waitFor(t, 10*time.Second, "verdict on the rebuilt session", func() bool {
		return s.Devices() == 1 && s.Counters().ResponsesAccepted > accepted
	})

	// Force-reattest on the rebuilt session: acknowledged, fast-path arm
	// record dropped (trivially absent here), and the device keeps
	// attesting — the kick did not wedge the issue loop.
	if w := adminDo(t, mux, "POST", "/admin/devices/admin-dev/reattest", "s3cret", ""); w.Code != http.StatusOK {
		t.Fatalf("reattest = %d: %s", w.Code, w.Body.String())
	}
	accepted = s.Counters().ResponsesAccepted
	waitFor(t, 10*time.Second, "verdict after forced reattest", func() bool {
		return s.Counters().ResponsesAccepted > accepted
	})
	var info admin.DeviceInfo
	w = adminDo(t, mux, "GET", "/admin/devices/admin-dev", "", "")
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.FastArmed {
		t.Fatal("fast path still armed after forced reattest")
	}
}

// TestAdminDrainContract drains the daemon through POST /admin/drain and
// holds it to the graceful Shutdown contract: new connections refused, Serve
// returns nil, inflight zero, and no goroutine leaked.
func TestAdminDrainContract(t *testing.T) {
	g0 := runtime.NumGoroutine()

	s := testServer(t, func(c *Config) {
		c.AttestEvery = 20 * time.Millisecond
		c.RequestTimeout = 300 * time.Millisecond
	})
	mux := admin.NewMux(s, admin.Options{Token: "s3cret"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	a := testAgent(t, "drain-api-dev")
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agentDone := make(chan struct{})
	go func() {
		defer close(agentDone)
		a.Serve(ctx, nc) //nolint:errcheck
	}()
	waitFor(t, 10*time.Second, "first verdict", func() bool {
		return s.Counters().ResponsesAccepted >= 1
	})

	if w := adminDo(t, mux, "POST", "/admin/drain", "s3cret", ""); w.Code != http.StatusAccepted {
		t.Fatalf("drain = %d: %s", w.Code, w.Body.String())
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after admin drain")
	}
	// AdminDrain runs Shutdown asynchronously (the handler answers 202 and
	// drains in the background), so Serve returning nil can slightly precede
	// the last inflight verdict resolving — wait for zero rather than
	// asserting it instantly.
	waitFor(t, 10*time.Second, "zero inflight after drain", func() bool {
		return s.Inflight() == 0
	})
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after admin drain")
	}
	if ok, reason := s.Ready(); ok || reason == "" {
		t.Fatalf("Ready() = %v %q after drain, want false with a reason", ok, reason)
	}

	cancel()
	select {
	case <-agentDone:
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not exit after drain")
	}
	waitFor(t, 10*time.Second, "goroutines back to baseline after drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= g0+2
	})
}

// TestReadyzFlipsDuringDrain pins the probe story a load balancer sees:
// /readyz goes 503 ("draining") the moment Shutdown starts — while the
// drain is still waiting out an unanswered inflight request — and
// /healthz stays 200 through every phase (the process is alive; it is
// just not taking new work).
func TestReadyzFlipsDuringDrain(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.AttestEvery = 20 * time.Millisecond
		c.RequestTimeout = time.Second
	})
	mux := admin.NewMux(s, admin.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck

	probe := func(path string) (int, string) {
		w := adminDo(t, mux, "GET", path, "", "")
		return w.Code, w.Body.String()
	}
	waitFor(t, 5*time.Second, "readyz 200 once serving", func() bool {
		code, _ := probe("/readyz")
		return code == http.StatusOK
	})
	if code, _ := probe("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d while serving, want 200", code)
	}

	// A mute prover: it sends a hello, never answers, so its issued
	// request holds the drain open for ~RequestTimeout.
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tc := transport.NewConn(client, transport.Options{WriteTimeout: 2 * time.Second})
	defer tc.Close()
	hello := &protocol.Hello{Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1, DeviceID: "mute-dev"}
	if err := tc.Send(hello.Encode()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "an inflight request to the mute prover", func() bool {
		return s.Inflight() >= 1
	})

	drainDone := make(chan error, 1)
	go func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		drainDone <- s.Shutdown(sctx)
	}()
	waitFor(t, 5*time.Second, "readyz flips to draining", func() bool {
		code, body := probe("/readyz")
		return code == http.StatusServiceUnavailable && strings.Contains(body, "draining")
	})
	// Mid-drain: still alive.
	if code, _ := probe("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d mid-drain, want 200", code)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Post-drain: still not ready, still alive.
	if code, _ := probe("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d after drain, want 503", code)
	}
	if code, _ := probe("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d after drain, want 200", code)
	}
}

// TestReadyzClusterMembership pins the cluster-aware half of readiness:
// a node the shared membership view marks down reports 503 (peers
// redirect its devices, so routing traffic to it only adds a hop) and
// recovers to 200 when marked back up. Liveness never flips.
func TestReadyzClusterMembership(t *testing.T) {
	ms := cluster.NewMembership(cluster.DefaultVnodes,
		cluster.Member{Name: "a", Addr: "127.0.0.1:1"},
		cluster.Member{Name: "b", Addr: "127.0.0.1:2"},
	)
	node, err := cluster.NewNode("a", ms, cluster.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })

	s := testServer(t, func(c *Config) { c.Cluster = node })
	mux := admin.NewMux(s, admin.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck

	probe := func(path string) int {
		return adminDo(t, mux, "GET", path, "", "").Code
	}
	waitFor(t, 5*time.Second, "readyz 200 once serving", func() bool {
		return probe("/readyz") == http.StatusOK
	})

	// A peer going down must not affect this node's readiness.
	ms.MarkDown("b")
	if code := probe("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d with a dead peer, want 200", code)
	}

	ms.MarkDown("a")
	w := adminDo(t, mux, "GET", "/readyz", "", "")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "membership") {
		t.Fatalf("readyz = %d %q with self marked down, want 503 citing membership", w.Code, w.Body.String())
	}
	if code := probe("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d with self marked down, want 200", code)
	}

	ms.MarkUp("a")
	if code := probe("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d after recovery, want 200", code)
	}
}
