package server

import (
	"testing"

	"proverattest/internal/core"
	"proverattest/internal/protocol"
)

// These tests lock in the daemon's per-frame allocation budget. The frame
// families a hostile peer can emit at line rate — rate-limited, unknown,
// and unsolicited-response frames — must die at the serving gate without
// GC pressure: zero allocations for the first two, at most one object per
// frame anywhere on the reject path (acceptance bar; the measured paths
// below are zero today).

func newAllocRig(t testing.TB) (*Server, *deviceState) {
	t.Helper()
	s, err := New(Config{
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		Golden:       core.GoldenRAMPattern(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := s.device("alloc-dev")
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func allocsPerFrame(t *testing.T, name string, limit float64, fn func()) {
	t.Helper()
	fn() // warm up
	if n := testing.AllocsPerRun(1000, fn); n > limit {
		t.Errorf("%s: %v allocs/frame, want <= %v", name, n, limit)
	}
}

func TestHandleFrameUnknownZeroAllocs(t *testing.T) {
	s, dev := newAllocRig(t)
	frame := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	allocsPerFrame(t, "unknown frame", 0, func() { s.handleFrame(dev, nil, frame) })
	if s.Counters().UnknownFrames == 0 {
		t.Fatal("unknown frames not counted")
	}
}

func TestHandleFrameRateLimitedZeroAllocs(t *testing.T) {
	s, dev := newAllocRig(t)
	// An empty bucket with a negligible refill rate: every frame is over
	// budget, the cheapest (and most attacker-reachable) reject of all.
	bucket := newTokenBucket(1e-9, 1)
	bucket.tokens = 0
	frame := []byte{0xDE, 0xAD}
	allocsPerFrame(t, "rate-limited frame", 0, func() { s.handleFrame(dev, bucket, frame) })
	if s.Counters().RateLimited == 0 {
		t.Fatal("rate-limited frames not counted")
	}
}

func TestHandleFrameUnsolicitedRespZeroAllocs(t *testing.T) {
	s, dev := newAllocRig(t)
	// A well-formed response answering no outstanding nonce: decode-into,
	// shard-locked map miss, static-error reject.
	frame := (&protocol.AttResp{Nonce: 0xFEED}).Encode()
	allocsPerFrame(t, "unsolicited response", 0, func() { s.handleFrame(dev, nil, frame) })
	if s.Counters().ResponsesUnsolicited == 0 {
		t.Fatal("unsolicited responses not counted")
	}
}

func TestHandleFrameMalformedRespZeroAllocs(t *testing.T) {
	s, dev := newAllocRig(t)
	// Classifies as a response (magic + version) but fails strict framing.
	frame := (&protocol.AttResp{Nonce: 1}).Encode()[:respTruncated]
	allocsPerFrame(t, "malformed response", 0, func() { s.handleFrame(dev, nil, frame) })
	c := s.Counters()
	if c.ResponsesMalformed == 0 || c.MalformedFrames == 0 {
		t.Fatal("malformed responses not counted on their distinct cause series")
	}
	if c.ResponsesRejected != c.ResponsesMalformed {
		t.Fatalf("rejected roll-up %d != malformed cause %d (no mismatches occurred)",
			c.ResponsesRejected, c.ResponsesMalformed)
	}
	if c.UnknownFrames != 0 {
		t.Fatal("malformed responses leaked into the unknown-kind counter")
	}
}

// TestHandleFrameMalformedStatsDistinctCause pins the accounting split:
// a frame that classifies as stats but fails strict decode lands on the
// malformed-stats series, not on unknown-kind (where it was historically
// conflated) and not on the response counters.
func TestHandleFrameMalformedStatsDistinctCause(t *testing.T) {
	s, dev := newAllocRig(t)
	frame := (&protocol.StatsReport{Received: 1}).Encode()
	frame = frame[:len(frame)-1] // classifies as stats, fails length check
	allocsPerFrame(t, "malformed stats", 0, func() { s.handleFrame(dev, nil, frame) })
	c := s.Counters()
	if c.MalformedFrames == 0 {
		t.Fatal("malformed stats frames not counted as malformed")
	}
	if c.UnknownFrames != 0 || c.ResponsesRejected != 0 || c.StatsReports != 0 {
		t.Fatalf("malformed stats conflated with another cause: %v", c)
	}
}

// TestHandleFrameFastAcceptZeroAllocs pins the quiescent-fleet steady
// state: an accepted O(1) fast response — decode-into, shard-locked
// memoized compare, retire — must not allocate, since a clean fleet
// emits exactly these at the attestation rate forever. Requests are
// pre-issued and responses pre-encoded so the measured region is the
// daemon's per-frame path alone.
func TestHandleFrameFastAcceptZeroAllocs(t *testing.T) {
	s, err := New(Config{
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		Golden:       core.GoldenRAMPattern(),
		FastPath:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := s.device("alloc-fast-dev")
	if err != nil {
		t.Fatal(err)
	}
	key := protocol.DeriveDeviceKey(testMaster, "alloc-fast-dev")
	fr := protocol.NewFastResponder(key[:], core.GoldenRAMPattern())

	// The arming full round.
	req, err := dev.v.NewRequest()
	if err != nil {
		t.Fatal(err)
	}
	var resp protocol.AttResp
	fr.RespondInto(req, &resp)
	s.handleFrame(dev, nil, resp.Encode())
	if c := s.Counters(); c.ResponsesAccepted != 1 || c.ResponsesFast != 0 {
		t.Fatalf("arming round: %+v", c)
	}

	// Pre-issue enough fast rounds for the warm-ups plus AllocsPerRun.
	const rounds = 1200
	frames := make([][]byte, 0, rounds)
	for i := 0; i < rounds; i++ {
		req, err := dev.v.NewRequest()
		if err != nil {
			t.Fatal(err)
		}
		if !req.AllowFast {
			t.Fatalf("round %d: armed verifier withheld fast permission", i)
		}
		var r protocol.AttResp
		if !fr.RespondInto(req, &r) {
			t.Fatalf("round %d: clean responder fell back to the full MAC", i)
		}
		frames = append(frames, r.Encode())
	}
	i := 0
	allocsPerFrame(t, "fast accept", 0, func() { s.handleFrame(dev, nil, frames[i]); i++ })
	c := s.Counters()
	if c.ResponsesFast != uint64(i) || c.ResponsesRejected != 0 {
		t.Fatalf("after %d fast frames: %+v", i, c)
	}
}

// respTruncated cuts a response mid-measurement: long enough to classify,
// short enough to fail DecodeAttRespInto's length check.
const respTruncated = 20

// BenchmarkHandleFrameUnsolicited times the daemon's gate on its most
// attacker-reachable reject: a well-formed response answering no
// outstanding nonce — decode-into, shard-locked map miss, static error.
func BenchmarkHandleFrameUnsolicited(b *testing.B) {
	s, dev := newAllocRig(b)
	frame := (&protocol.AttResp{Nonce: 0xFEED}).Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleFrame(dev, nil, frame)
	}
}

func TestHandleFrameStatsWithinBudget(t *testing.T) {
	s, dev := newAllocRig(t)
	frame := (&protocol.StatsReport{Received: 1}).Encode()
	// One decoded StatsReport object per heartbeat frame is the budget.
	allocsPerFrame(t, "stats frame", 1, func() { s.handleFrame(dev, nil, frame) })
	if dev.lastStats.Load() == nil {
		t.Fatal("stats report not retained")
	}
}
