package server

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"sort"
	"testing"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/protocol"
	"proverattest/internal/transport"
)

// benchRig wires one agent over net.Pipe to a bare verifier-side
// transport.Conn, so benchmarks measure the socket path without the
// daemon's scheduling around it.
type benchRig struct {
	a      *agent.Agent
	client *transport.Conn
	v      *protocol.Verifier
	cancel context.CancelFunc
	done   chan struct{}
}

func newBenchRig(tb testing.TB) *benchRig {
	tb.Helper()
	const deviceID = "bench-dev"
	a, err := agent.New(agent.Config{
		DeviceID:     deviceID,
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		// A distant heartbeat keeps stats chatter out of the timings.
		StatsEvery: time.Hour,
	})
	if err != nil {
		tb.Fatal(err)
	}
	clientNC, agentNC := net.Pipe()
	client := transport.NewConn(clientNC, transport.Options{
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.Serve(ctx, agentNC) //nolint:errcheck
	}()
	// Consume the hello so the timed loops see only protocol frames.
	frame, err := client.Recv()
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := protocol.DecodeHello(frame); err != nil {
		tb.Fatalf("first frame is not a hello: %v", err)
	}
	key := protocol.DeriveDeviceKey(testMaster, deviceID)
	v, err := protocol.NewVerifier(protocol.VerifierConfig{
		Freshness: protocol.FreshCounter,
		Auth:      protocol.NewHMACAuth(key[:]),
		AttestKey: key[:],
		Golden:    a.Device().GoldenRAM(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return &benchRig{a: a, client: client, v: v, cancel: cancel, done: done}
}

func (r *benchRig) close() {
	r.cancel()
	r.client.Close()
	<-r.done
}

// recvAttResp reads frames until the next attestation response.
func (r *benchRig) recvAttResp(tb testing.TB) []byte {
	tb.Helper()
	for {
		frame, err := r.client.Recv()
		if err != nil {
			tb.Fatal(err)
		}
		if protocol.ClassifyFrame(frame) == protocol.FrameAttResp {
			return frame
		}
	}
}

// honestRound runs one full attest round and verifies the measurement.
func (r *benchRig) honestRound(tb testing.TB) {
	tb.Helper()
	req, err := r.v.NewRequest()
	if err != nil {
		tb.Fatal(err)
	}
	if err := r.client.Send(req.Encode()); err != nil {
		tb.Fatal(err)
	}
	if ok, err := r.v.CheckResponse(r.recvAttResp(tb)); !ok {
		tb.Fatalf("measurement rejected: %v", err)
	}
	// Drain the stats frame the agent piggybacks on every measurement:
	// net.Pipe is unbuffered, so leaving it in the pipe would wedge the
	// agent's write against our next request's write.
	frame, err := r.client.Recv()
	if err != nil {
		tb.Fatal(err)
	}
	if protocol.ClassifyFrame(frame) != protocol.FrameStats {
		tb.Fatalf("expected the piggybacked stats frame, got %v", protocol.ClassifyFrame(frame))
	}
}

// forgedFrame is a well-framed request with a garbage tag — the
// impersonator's cheapest gate probe.
func forgedBenchFrame(n int) []byte {
	tag := make([]byte, 20)
	for j := range tag {
		tag[j] = byte(n*31 + j*7)
	}
	req := &protocol.AttReq{
		Freshness: protocol.FreshCounter,
		Auth:      protocol.AuthHMACSHA1,
		Nonce:     2_000_000_011 + uint64(n),
		Counter:   2_000_000_011 + uint64(n),
		Tag:       tag,
	}
	return req.Encode()
}

// BenchmarkSocketFullAttest times one authentic attestation round over the
// socket: request signing, both socket hops, the simulated ≈754 ms memory
// measurement (host-time compressed) and response verification.
func BenchmarkSocketFullAttest(b *testing.B) {
	rig := newBenchRig(b)
	defer rig.close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.honestRound(b)
	}
}

// BenchmarkSocketGateReject times the prover's cost of refusing one forged
// frame over the socket. The b.N forged frames are flushed by a single
// honest round (the agent processes frames in order, so its response
// proves every forgery was handled); that one measurement amortises to
// noise for large b.N.
func BenchmarkSocketGateReject(b *testing.B) {
	rig := newBenchRig(b)
	defer rig.close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rig.client.Send(forgedBenchFrame(i)); err != nil {
			b.Fatal(err)
		}
	}
	rig.honestRound(b)
	b.StopTimer()
	st := rig.a.Snapshot()
	if st.AuthRejected != uint64(b.N) {
		b.Fatalf("AuthRejected = %d, want %d", st.AuthRejected, b.N)
	}
}

// transportBench is the BENCH_transport.json schema: host-side per-op
// costs of the two socket paths and the asymmetry between them. The
// absolute numbers are host wall time (the simulation compresses the
// prover's ≈754 ms measurement); the ratio is the portable result.
type transportBench struct {
	Bench     string `json:"bench"`
	Freshness string `json:"freshness"`
	Auth      string `json:"auth"`
	Transport string `json:"transport"`

	FullAttestRounds  int    `json:"full_attest_rounds"`
	GateRejectFrames  int    `json:"gate_reject_frames"`
	GateRejectBatches int    `json:"gate_reject_batches"`
	FullAttestNsPerOp int64  `json:"full_attest_host_ns_per_op"`
	FullAttestNsP50   int64  `json:"full_attest_host_ns_p50"`
	FullAttestNsP95   int64  `json:"full_attest_host_ns_p95"`
	GateRejectNsPerOp int64  `json:"gate_reject_host_ns_per_op"`
	GateRejectNsP50   int64  `json:"gate_reject_host_ns_p50"`
	GateRejectNsP95   int64  `json:"gate_reject_host_ns_p95"`
	AsymmetryRatio    int64  `json:"asymmetry_ratio"`
	AgentMeasurements uint64 `json:"agent_measurements"`
	AgentGateRejected uint64 `json:"agent_gate_rejected"`
}

func sortedPercentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func sampleStats(samples []int64) (mean, p50, p95 int64) {
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, s := range sorted {
		sum += s
	}
	return sum / int64(len(sorted)), sortedPercentile(sorted, 0.50), sortedPercentile(sorted, 0.95)
}

// TestEmitTransportBench measures gate-reject versus full-attest cost over
// the socket path and, when BENCH_TRANSPORT_OUT names a file, writes the
// result as BENCH_transport.json (see `make bench-transport`). Without the
// env var it runs as a small smoke check of the same harness.
//
// Stability: the full-attest cost is sampled per round (50 rounds) and the
// gate cost per batch of 100 forged frames, each batch flushed by one
// honest round; medians drive the asymmetry assertion so a single
// scheduler hiccup cannot flip the result.
func TestEmitTransportBench(t *testing.T) {
	out := os.Getenv("BENCH_TRANSPORT_OUT")
	rounds, batches, batchSize := 1, 1, 50
	if out != "" {
		rounds, batches, batchSize = 50, 20, 100
	}
	frames := batches * batchSize
	rig := newBenchRig(t)
	defer rig.close()
	rig.honestRound(t) // warm both sides before timing

	fullSamples := make([]int64, rounds)
	for i := range fullSamples {
		t0 := time.Now()
		rig.honestRound(t)
		fullSamples[i] = time.Since(t0).Nanoseconds()
	}
	fullNs, fullP50, fullP95 := sampleStats(fullSamples)

	// Each gate batch is flushed by one honest round (the agent processes
	// frames in order, so its response proves the whole batch was
	// handled); that round's median cost is subtracted back out.
	gateSamples := make([]int64, batches)
	sent := 0
	for b := range gateSamples {
		t1 := time.Now()
		for i := 0; i < batchSize; i++ {
			if err := rig.client.Send(forgedBenchFrame(sent)); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		rig.honestRound(t)
		ns := (time.Since(t1).Nanoseconds() - fullP50) / int64(batchSize)
		if ns < 1 {
			ns = 1
		}
		gateSamples[b] = ns
	}
	gateNs, gateP50, gateP95 := sampleStats(gateSamples)

	st := rig.a.Snapshot()
	wantMeasured := uint64(1 + rounds + batches) // warm-up + timed rounds + batch flushes
	if st.AuthRejected != uint64(frames) || st.Measurements != wantMeasured {
		t.Fatalf("stats = %+v, want %d auth rejects, %d measurements", st, frames, wantMeasured)
	}
	// The asymmetry the subsystem exists to demonstrate: an authentic
	// round costs orders of magnitude more than refusing a forgery.
	// Compared at the medians, which outlier rounds cannot move.
	if fullP50 < 10*gateP50 {
		t.Errorf("full attest %d ns vs gate reject %d ns (medians): asymmetry below 10x", fullP50, gateP50)
	}
	t.Logf("full attest %d ns/op (p50 %d, p95 %d), gate reject %d ns/op (p50 %d, p95 %d), %dx",
		fullNs, fullP50, fullP95, gateNs, gateP50, gateP95, fullP50/gateP50)

	if out == "" {
		return
	}
	res := transportBench{
		Bench:             "transport",
		Freshness:         protocol.FreshCounter.String(),
		Auth:              protocol.AuthHMACSHA1.String(),
		Transport:         "net.Pipe loopback",
		FullAttestRounds:  rounds,
		GateRejectFrames:  frames,
		GateRejectBatches: batches,
		FullAttestNsPerOp: fullNs,
		FullAttestNsP50:   fullP50,
		FullAttestNsP95:   fullP95,
		GateRejectNsPerOp: gateNs,
		GateRejectNsP50:   gateP50,
		GateRejectNsP95:   gateP95,
		AsymmetryRatio:    fullP50 / gateP50,
		AgentMeasurements: st.Measurements,
		AgentGateRejected: st.GateRejected(),
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
