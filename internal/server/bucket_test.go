package server

import (
	"testing"
	"time"
)

// fakeBucket builds a token bucket on a controllable clock. The returned
// advance function moves that clock forward.
func fakeBucket(rate, burst float64) (*tokenBucket, func(time.Duration)) {
	clk := time.Unix(1_000_000, 0)
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, last: clk}
	b.now = func() time.Time { return clk }
	advance := func(d time.Duration) { clk = clk.Add(d) }
	return b, advance
}

func TestTokenBucketBurstExhaustion(t *testing.T) {
	b, _ := fakeBucket(10, 4)
	for i := 0; i < 4; i++ {
		if !b.allow() {
			t.Fatalf("frame %d refused inside the burst", i)
		}
	}
	// Clock frozen: no refill, everything past the burst is refused.
	for i := 0; i < 3; i++ {
		if b.allow() {
			t.Fatalf("frame allowed with an exhausted bucket and a frozen clock")
		}
	}
}

func TestTokenBucketPartialRefillAfterSleep(t *testing.T) {
	b, advance := fakeBucket(10, 4)
	for i := 0; i < 4; i++ {
		b.allow()
	}
	if b.allow() {
		t.Fatal("exhausted bucket allowed a frame")
	}
	// 250 ms at 10 tokens/s refills 2.5 tokens: exactly two more frames.
	advance(250 * time.Millisecond)
	if !b.allow() || !b.allow() {
		t.Fatal("partial refill did not admit 2 frames")
	}
	if b.allow() {
		t.Fatal("partial refill admitted a 3rd frame from 2.5 tokens")
	}
	// The fractional remainder must carry over, not be dropped: 50 ms more
	// brings 0.5 + 0.5 = 1 token.
	advance(50 * time.Millisecond)
	if !b.allow() {
		t.Fatal("fractional token credit was lost across refills")
	}
}

func TestTokenBucketRefillCapsAtBurst(t *testing.T) {
	b, advance := fakeBucket(1000, 8)
	for i := 0; i < 8; i++ {
		b.allow()
	}
	// An hour of idle credit still caps at the burst depth.
	advance(time.Hour)
	allowed := 0
	for i := 0; i < 100; i++ {
		if b.allow() {
			allowed++
		}
	}
	if allowed != 8 {
		t.Fatalf("allowed %d frames after long idle, want burst depth 8", allowed)
	}
}

func TestTokenBucketZeroRateUnlimited(t *testing.T) {
	b, _ := fakeBucket(0, 1)
	for i := 0; i < 10_000; i++ {
		if !b.allow() {
			t.Fatalf("rate=0 bucket refused frame %d; zero rate means unlimited", i)
		}
	}
}

// TestTokenBucketClockReadsAmortised pins the perf contract that motivated
// the batched refill: frames served from burst headroom must not read the
// clock at all.
func TestTokenBucketClockReadsAmortised(t *testing.T) {
	reads := 0
	clk := time.Unix(1_000_000, 0)
	b := &tokenBucket{rate: 10, burst: 16, tokens: 16, last: clk}
	b.now = func() time.Time { reads++; return clk }
	for i := 0; i < 16; i++ {
		b.allow()
	}
	if reads != 0 {
		t.Fatalf("%d clock reads inside the burst, want 0", reads)
	}
	b.allow() // first refused frame pays the one refill read
	if reads != 1 {
		t.Fatalf("%d clock reads on exhaustion, want 1", reads)
	}
}
