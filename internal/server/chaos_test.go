package server

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/faultnet"
	"proverattest/internal/protocol"
	"proverattest/internal/transport"
)

// Server-side chaos: the daemon under slow-loris peers, injected accept
// failures, and a full seeded fleet-survival smoke run (the make
// chaos-smoke target). The agent-side half of the chaos matrix lives in
// internal/agent/chaos_test.go.

// TestSlowLorisEvicted pins both halves of the slow-loris defence: a
// connection that never completes a hello dies at the hello deadline,
// and one that completes the hello and then stalls is evicted at the
// read timeout — while an honest agent on the same daemon keeps getting
// verdicts (no shard or listener wedge).
func TestSlowLorisEvicted(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.HelloTimeout = 80 * time.Millisecond
		c.ReadTimeout = 150 * time.Millisecond
		c.AttestEvery = 25 * time.Millisecond
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck

	// Loris #1: connects and says nothing. Must die at HelloTimeout, not
	// hold an fd for the (much longer) steady-state ReadTimeout.
	mute, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()
	waitFor(t, 5*time.Second, "hello-timeout eviction", func() bool {
		return s.Counters().HelloTimeouts >= 1
	})

	// Loris #2: completes a valid hello, then stalls forever. Must be
	// evicted at the post-hello read deadline.
	stalled, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	hello := &protocol.Hello{Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1, DeviceID: "loris"}
	if err := transport.NewConn(stalled, transport.Options{}).Send(hello.Encode()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "read-stall eviction", func() bool {
		return s.Counters().Evictions >= 1
	})

	// The honest agent is unaffected by either loris.
	a := testAgent(t, "honest-dev")
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Serve(ctx, nc) //nolint:errcheck
	waitFor(t, 10*time.Second, "honest verdicts despite lorises", func() bool {
		return s.Counters().ResponsesAccepted >= 2
	})
}

// TestServeSurvivesInjectedAcceptFailures wraps the listener in faultnet
// so a deterministic subset of accepts fail with a Temporary() error:
// the accept loop must retry instead of exiting, and every agent that
// dials must still end up served.
func TestServeSurvivesInjectedAcceptFailures(t *testing.T) {
	s := testServer(t, func(c *Config) { c.AttestEvery = 25 * time.Millisecond })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := faultnet.WrapListener(ln, faultnet.ListenerOptions{AcceptFailEvery: 2})
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(fln) }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const agents = 3
	for i := 0; i < agents; i++ {
		a := testAgent(t, fmt.Sprintf("accept-dev-%d", i))
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		go a.Serve(ctx, nc) //nolint:errcheck
	}
	waitFor(t, 15*time.Second, "all agents served through accept faults", func() bool {
		return s.Devices() == agents && s.Counters().ResponsesAccepted >= agents
	})
	if got := s.Counters().AcceptRetries; got < 1 {
		t.Fatalf("AcceptRetries = %d, want >= 1 (the fault injector fails every 2nd accept)", got)
	}
	select {
	case err := <-serveDone:
		t.Fatalf("Serve exited (%v) instead of retrying temporary accept failures", err)
	default:
	}
}

// TestShutdownDrains pins the graceful-drain contract: Shutdown stops
// accepting and issuing, waits for the outstanding verdicts to resolve,
// and returns with zero inflight. New connections during the drain are
// refused and counted.
func TestShutdownDrains(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.AttestEvery = 20 * time.Millisecond
		c.RequestTimeout = 500 * time.Millisecond
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	a := testAgent(t, "drain-dev")
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Serve(ctx, nc) //nolint:errcheck
	waitFor(t, 10*time.Second, "first verdict", func() bool {
		return s.Counters().ResponsesAccepted >= 1
	})

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s.Inflight(); got != 0 {
		t.Fatalf("Inflight = %d after drain, want 0", got)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestChaosSmoke is the seeded survival run behind `make chaos-smoke`:
// a small fleet over faultnet chaos (flapping links, dropped frames),
// then the chaos stops and every agent must recover — fresh MAC work on
// every device, monotone fleet aggregates, zero phantom reboots — and a
// graceful drain must leak no goroutines.
func TestChaosSmoke(t *testing.T) {
	const (
		chaosSeed = 42
		fleet     = 4
	)
	g0 := runtime.NumGoroutine()

	s := testServer(t, func(c *Config) {
		c.AttestEvery = 20 * time.Millisecond
		c.RequestTimeout = 300 * time.Millisecond
		c.ReadTimeout = time.Second
		c.WriteTimeout = time.Second
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	sched := faultnet.MustParseSchedule("flap=120ms:reset;pct=5:drop")
	var chaosOn atomic.Bool
	chaosOn.Store(true)
	var dialSeq atomic.Int64
	dial := func(ctx context.Context) (net.Conn, error) {
		n := dialSeq.Add(1)
		var d net.Dialer
		nc, err := d.DialContext(ctx, "tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		if !chaosOn.Load() {
			return nc, nil
		}
		return faultnet.Wrap(nc, sched, faultnet.Options{Seed: chaosSeed + n}), nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	agents := make([]*agent.Agent, fleet)
	runDone := make(chan error, fleet)
	for i := range agents {
		agents[i] = testAgent(t, fmt.Sprintf("smoke-dev-%d", i))
		a := agents[i]
		seed := int64(i)
		go func() {
			runDone <- a.Run(ctx, dial, agent.Backoff{
				Base: 10 * time.Millisecond, Max: 100 * time.Millisecond,
				Jitter: 0.2, Seed: chaosSeed + seed,
			})
		}()
	}

	// Chaos phase: flapping links force reconnects, yet verdicts and
	// stats keep flowing and the aggregate stays monotone.
	var prev protocol.StatsReport
	waitFor(t, 60*time.Second, "chaos-phase verdicts and reconnects", func() bool {
		cur := s.AgentStats()
		if cur.Regressed(&prev) {
			t.Fatalf("fleet aggregate regressed under chaos: %+v -> %+v", prev, cur)
		}
		prev = cur
		return s.Counters().ResponsesAccepted >= 2*fleet && dialSeq.Load() >= 2*fleet
	})

	// Recovery phase: stop injecting faults; every device must perform
	// fresh MAC work on a clean link — 100% agent recovery.
	chaosOn.Store(false)
	marks := make([]uint64, fleet)
	for i, a := range agents {
		marks[i] = a.Snapshot().Measurements
	}
	waitFor(t, 60*time.Second, "every agent measuring again post-chaos", func() bool {
		for i, a := range agents {
			if a.Snapshot().Measurements <= marks[i] {
				return false
			}
		}
		return true
	})

	if got := s.Counters().StatsEpochs; got != 0 {
		t.Fatalf("StatsEpochs = %d, want 0 (reconnects are not reboots)", got)
	}
	if got := s.Devices(); got != fleet {
		t.Fatalf("Devices = %d, want %d", got, fleet)
	}

	// Drain: stop the fleet, shut the daemon down gracefully, and demand
	// the goroutine count returns to its pre-test baseline.
	cancel()
	for i := 0; i < fleet; i++ {
		select {
		case <-runDone:
		case <-time.After(10 * time.Second):
			t.Fatal("agent Run did not exit on cancel")
		}
	}
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	waitFor(t, 10*time.Second, "goroutines back to baseline after drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= g0+2
	})
}
