package server

import (
	"sync"

	"proverattest/internal/cluster"
	"proverattest/internal/transport"
)

// This file is the daemon side of cluster mode: adopting handed-off
// state when an owned device first appears, serving peers' state-transfer
// requests, and the daemon-wide admission bucket. The routing decisions
// themselves (ring, membership, redirects' addresses) live in
// internal/cluster; this file only moves verifier state in and out of the
// store.

// handoffKind records how a newly created device entry got its freshness
// state.
type handoffKind int

const (
	handoffNone    handoffKind = iota
	handoffLive                // fetched from the previous owner, exact
	handoffReplica             // imported from a replicated snapshot, jumped
)

// adoptClusterState initialises a not-yet-published device entry from the
// cluster, preferring the previous owner's live state (exact: the
// counter/nonce streams continue precisely, the fast-path arm record
// survives) and falling back to a locally held replica (jumped: streams
// skip FreshnessSlack forward, fast record dropped — see
// cluster.Snapshot.JumpForReplica for why both are freshness-safe).
func (s *Server) adoptClusterState(d *deviceState, deviceID string) handoffKind {
	if s.cl == nil {
		return handoffNone
	}
	if snap, ok := s.cl.FetchState(deviceID); ok {
		d.importSnapshot(snap)
		return handoffLive
	}
	if snap, ok := s.cl.TakeReplica(deviceID); ok {
		d.importSnapshot(snap.JumpForReplica())
		return handoffReplica
	}
	return handoffNone
}

// importSnapshot loads a handed-off snapshot into an entry that has not
// been published to the store yet (no lock needed — nothing else can see
// it).
func (d *deviceState) importSnapshot(snap cluster.Snapshot) {
	d.v.ImportState(snap.State)
	d.statsBase = snap.StatsBase
	d.statsEpochs = snap.StatsEpochs
	if snap.HaveLast {
		st := snap.LastStats
		d.lastStats.Store(&st)
	}
}

// snapshotFor reads a device's current transferable state — the
// replication pusher's source, bound via cluster.Node.BindSource.
func (s *Server) snapshotFor(deviceID string) (cluster.Snapshot, bool) {
	d, ok := s.store.Get(deviceID)
	if !ok {
		return cluster.Snapshot{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.handedOff {
		return cluster.Snapshot{}, false
	}
	return d.snapshotLocked(), true
}

// snapshotLocked assembles the transfer snapshot. Callers hold d.mu.
func (d *deviceState) snapshotLocked() cluster.Snapshot {
	snap := cluster.Snapshot{
		State:       d.v.ExportState(),
		StatsBase:   d.statsBase,
		StatsEpochs: d.statsEpochs,
	}
	if st := d.lastStats.Load(); st != nil {
		snap.LastStats = *st
		snap.HaveLast = true
	}
	return snap
}

// extractState serves a peer's state request with move semantics: export
// the snapshot, mark the entry handed off (under its lock, so no request
// can be issued after the export — the counter the new owner continues
// from is exact), and drop it from the store. A device this daemon never
// held answers found == false.
func (s *Server) extractState(deviceID string) []byte {
	d, ok := s.store.Get(deviceID)
	if !ok {
		return cluster.EncodeStateResp(deviceID, nil)
	}
	d.mu.Lock()
	if d.handedOff {
		// A racing extract already took it; at most one positive answer
		// may exist or two daemons would both continue the stream.
		d.mu.Unlock()
		return cluster.EncodeStateResp(deviceID, nil)
	}
	d.handedOff = true
	snap := d.snapshotLocked()
	d.mu.Unlock()

	if _, removed := s.store.Remove(deviceID); removed {
		s.deviceCount.Add(-1)
	}
	if tr := d.tier.Load(); tr != nil {
		tr.devices.Add(-1)
	}
	s.m.stateExports.Inc()
	// The husk's issue loop notices handedOff on its next tick and tears
	// the old session down; responses still in flight die as unsolicited
	// or retire against the husk's pending map, never touching the
	// counter stream.
	return cluster.EncodeStateResp(deviceID, &snap)
}

// servePeer runs a peer link: state requests, replication pushes, pings.
// Peer links are not device connections — they create no device state and
// count toward no fleet aggregates.
func (s *Server) servePeer(tc *transport.Conn, helloFrame []byte) {
	if _, err := cluster.DecodePeerHello(helloFrame); err != nil {
		s.m.connRejHello.Inc()
		return
	}
	s.m.peerConns.Inc()
	for {
		frame, err := tc.RecvShared()
		if err != nil {
			return
		}
		switch cluster.ClassifyPeer(frame) {
		case cluster.PeerStateReq:
			id, err := cluster.DecodeStateReq(frame)
			if err != nil {
				s.m.rejUnknown.Inc()
				return
			}
			if tc.Send(s.extractState(id)) != nil {
				return
			}
		case cluster.PeerStatePush:
			id, snap, err := cluster.DecodeStatePush(frame)
			if err != nil {
				s.m.rejUnknown.Inc()
				return
			}
			s.cl.StoreReplica(id, snap)
		case cluster.PeerPing:
			if tc.Send(cluster.EncodePong()) != nil {
				return
			}
		default:
			// A peer speaking garbage is cut off; the link redials clean.
			s.m.rejUnknown.Inc()
			return
		}
	}
}

// lockedBucket is the daemon-wide admission bucket: the same batched
// token bucket the per-connection gate uses, made safe for the many
// serving goroutines that share it. One uncontended mutex lock/unlock per
// frame, no allocation — the gate-reject paths stay 0 allocs/frame.
type lockedBucket struct {
	mu sync.Mutex
	b  tokenBucket
}

func newLockedBucket(rate, burst float64) *lockedBucket {
	lb := &lockedBucket{}
	lb.b = *newTokenBucket(rate, burst)
	return lb
}

func (lb *lockedBucket) allow() bool {
	lb.mu.Lock()
	ok := lb.b.allow()
	lb.mu.Unlock()
	return ok
}
