package server

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/cluster"
	"proverattest/internal/core"
	"proverattest/internal/protocol"
)

// clusterDaemon bundles one in-process cluster member: its listener, its
// ring view and the daemon serving on it.
type clusterDaemon struct {
	name string
	addr string
	node *cluster.Node
	srv  *Server
}

// startCluster brings up one daemon per name, all sharing a Membership
// over real loopback listeners, and serves them.
func startCluster(t *testing.T, names []string, mutate func(*Config)) (*cluster.Membership, []*clusterDaemon) {
	t.Helper()
	lns := make([]net.Listener, len(names))
	members := make([]cluster.Member, len(names))
	for i, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		members[i] = cluster.Member{Name: name, Addr: ln.Addr().String()}
	}
	ms := cluster.NewMembership(cluster.DefaultVnodes, members...)

	ds := make([]*clusterDaemon, len(names))
	for i, name := range names {
		node, err := cluster.NewNode(name, ms, cluster.NodeOptions{CallTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Freshness:    protocol.FreshCounter,
			Auth:         protocol.AuthHMACSHA1,
			MasterSecret: testMaster,
			Golden:       core.GoldenRAMPattern(),
			AttestEvery:  25 * time.Millisecond,
			FastPath:     true,
			Cluster:      node,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(lns[i]) //nolint:errcheck
		ds[i] = &clusterDaemon{name: name, addr: members[i].Addr, node: node, srv: s}
		t.Cleanup(func() { s.Close(); node.Close() })
	}
	return ms, ds
}

// clusterAgent builds a monitored (fast-path capable) prover for cluster
// tests.
func clusterAgent(t *testing.T, id string) *agent.Agent {
	t.Helper()
	a, err := agent.New(agent.Config{
		DeviceID:     id,
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		FastPath:     true,
		StatsEvery:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// devicesOwnedBy picks n device IDs the ring assigns to owner.
func devicesOwnedBy(t *testing.T, ring *cluster.Ring, owner, prefix string, n int) []string {
	t.Helper()
	var ids []string
	for i := 0; len(ids) < n && i < 100_000; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if got, ok := ring.Owner(id); ok && got == owner {
			ids = append(ids, id)
		}
	}
	if len(ids) < n {
		t.Fatalf("found only %d of %d devices owned by %s", len(ids), n, owner)
	}
	return ids
}

func deviceCounter(t *testing.T, s *Server, id string) uint64 {
	t.Helper()
	d, ok := s.store.Get(id)
	if !ok {
		t.Fatalf("device %s not in store", id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.v.LastCounter()
}

// TestClusterLiveHandoff reconnects a device to a new owner while the old
// owner is alive: the state transfer must be exact — the counter stream
// continues, the fast-path arm record survives, and the old owner keeps a
// husk no longer in its table.
func TestClusterLiveHandoff(t *testing.T) {
	names := []string{"n0", "n1"}
	ms, ds := startCluster(t, names, nil)

	// Phase 1 runs with n1 down, so n0 owns everything; the device is
	// chosen to belong to n1 once the full ring is back.
	ms.MarkDown("n1")
	ring := cluster.NewRing(cluster.DefaultVnodes, names)
	dev := devicesOwnedBy(t, ring, "n1", "hand-dev", 1)[0]

	a := clusterAgent(t, dev)
	ctx1, cancel1 := context.WithCancel(context.Background())
	nc, err := net.Dial("tcp", ds[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); a.Serve(ctx1, nc) }() //nolint:errcheck

	waitFor(t, 20*time.Second, "accepted rounds on the old owner", func() bool {
		return ds[0].srv.Counters().ResponsesAccepted >= 2
	})
	c0 := deviceCounter(t, ds[0].srv, dev)
	cancel1()
	<-done

	// Ownership flips to n1; the reconnect must be redirected there and
	// adopt the live state.
	ms.MarkUp("n1")
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go a.RunAddrs(ctx2, []string{ds[0].addr, ds[1].addr}, agent.Backoff{ //nolint:errcheck
		Base: 10 * time.Millisecond, Max: 100 * time.Millisecond,
	})

	waitFor(t, 20*time.Second, "live handoff on the new owner", func() bool {
		return ds[1].srv.Counters().HandoffsLive == 1
	})
	waitFor(t, 20*time.Second, "accepted rounds on the new owner", func() bool {
		return ds[1].srv.Counters().ResponsesAccepted >= 2
	})

	if c1 := deviceCounter(t, ds[1].srv, dev); c1 <= c0 {
		t.Errorf("counter did not continue across handoff: old owner at %d, new owner at %d", c0, c1)
	}
	if got := a.Snapshot().FreshnessRejected; got != 0 {
		t.Errorf("device rejected %d requests for freshness — the handoff reset the stream", got)
	}
	c := ds[0].srv.Counters()
	if c.StateExports != 1 {
		t.Errorf("old owner exported %d states, want 1", c.StateExports)
	}
	if c.Redirects == 0 {
		t.Error("old owner never redirected the reconnect")
	}
	if n := ds[0].srv.Devices(); n != 0 {
		t.Errorf("old owner still counts %d devices after the handoff", n)
	}
	// The fast-path record survived the exact transfer: the new owner
	// keeps granting fast responses.
	waitFor(t, 20*time.Second, "fast responses on the new owner", func() bool {
		return ds[1].srv.Counters().ResponsesFast >= 1
	})
}

// TestClusterFailoverSmoke is the CI failover drill: three daemons, a
// fleet spread across them, one daemon killed mid-run. Survivors must
// absorb its devices from replicas with zero freshness regressions — no
// device ever rejects a verifier request as stale. (That a replica
// import cannot re-arm a stale fast-path record is pinned separately in
// TestReplicaAdoptionJumpsAndDropsFast, where it is deterministic.)
func TestClusterFailoverSmoke(t *testing.T) {
	names := []string{"n0", "n1", "n2"}
	ms, ds := startCluster(t, names, nil)
	ring := cluster.NewRing(cluster.DefaultVnodes, names)
	byName := map[string]*clusterDaemon{}
	for _, d := range ds {
		byName[d.name] = d
	}

	// Two devices per daemon, so the victim always has state to lose.
	var devs []string
	for _, name := range names {
		devs = append(devs, devicesOwnedBy(t, ring, name, "fo-dev", 2)...)
	}
	addrs := []string{ds[0].addr, ds[1].addr, ds[2].addr}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agents := make([]*agent.Agent, len(devs))
	for i, dev := range devs {
		agents[i] = clusterAgent(t, dev)
		// Rotate the address list per agent so some first dials hit a
		// non-owner and exercise the redirect path.
		rot := append(append([]string{}, addrs[i%len(addrs):]...), addrs[:i%len(addrs)]...)
		go agents[i].RunAddrs(ctx, rot, agent.Backoff{ //nolint:errcheck
			Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Seed: int64(i),
		})
	}

	accepted := func(a *agent.Agent) uint64 {
		st := a.Snapshot()
		return st.Measurements + st.FastResponses
	}
	waitFor(t, 30*time.Second, "two accepted rounds per device", func() bool {
		for _, a := range agents {
			if accepted(a) < 2 {
				return false
			}
		}
		return true
	})
	// Every device replicated its freshness snapshot to its ring
	// successor — the precondition for a lossless failover.
	waitFor(t, 30*time.Second, "replica coverage of the fleet", func() bool {
		held := 0
		for _, d := range ds {
			held += d.node.ReplicasHeld()
		}
		return held >= len(devs)
	})

	// Kill the owner of the first device.
	victimName, _ := ring.Owner(devs[0])
	victim := byName[victimName]
	var victimDevs []string
	for _, dev := range devs {
		if owner, _ := ring.Owner(dev); owner == victimName {
			victimDevs = append(victimDevs, dev)
		}
	}
	var survivors []*clusterDaemon
	for _, d := range ds {
		if d != victim {
			survivors = append(survivors, d)
		}
	}
	fastBase := survivors[0].srv.Counters().ResponsesFast + survivors[1].srv.Counters().ResponsesFast

	ms.MarkDown(victimName)
	victim.srv.Close()
	// Baselines are read only once the victim's sockets are gone, so two
	// more accepted rounds provably need a fresh session on a survivor —
	// i.e. the device reconnected and was adopted.
	base := make([]uint64, len(agents))
	for i, a := range agents {
		base[i] = accepted(a)
	}

	waitFor(t, 30*time.Second, "two fresh rounds per device after failover", func() bool {
		for i, a := range agents {
			if accepted(a) < base[i]+2 {
				return false
			}
		}
		return true
	})

	// The headline invariant: failover never reset a freshness stream.
	// A survivor re-issuing a counter the device had already seen would
	// show up here as a device-side freshness rejection.
	for i, a := range agents {
		if got := a.Snapshot().FreshnessRejected; got != 0 {
			t.Errorf("device %s rejected %d requests for freshness after failover", devs[i], got)
		}
	}
	var handoffs uint64
	ownedNow := 0
	for _, d := range survivors {
		c := d.srv.Counters()
		handoffs += c.HandoffsReplica
		ownedNow += d.srv.Devices()
	}
	if int(handoffs) < len(victimDevs) {
		t.Errorf("survivors adopted %d replicas, want at least the victim's %d devices", handoffs, len(victimDevs))
	}
	if ownedNow != len(devs) {
		t.Errorf("survivors own %d devices, want the whole fleet of %d", ownedNow, len(devs))
	}
	// The replica import dropped the fast record, so the fast path came
	// back only the legitimate way: a fresh full measurement re-armed it.
	waitFor(t, 30*time.Second, "fast path re-armed on survivors", func() bool {
		n := survivors[0].srv.Counters().ResponsesFast + survivors[1].srv.Counters().ResponsesFast
		return n > fastBase
	})
}

// TestReplicaAdoptionJumpsAndDropsFast pins the replica-import semantics
// at the daemon seam, deterministically: a device adopted from a
// replicated snapshot continues FreshnessSlack past the replica's counter
// (the snapshot may lag the dead owner's live state by in-flight rounds)
// and holds no fast-path record — the next request demands a full
// measurement, whatever the replica claimed. A stale fast re-arm after
// failover is therefore impossible by construction.
func TestReplicaAdoptionJumpsAndDropsFast(t *testing.T) {
	ms := cluster.NewMembership(cluster.DefaultVnodes, cluster.Member{Name: "solo", Addr: "127.0.0.1:1"})
	node, err := cluster.NewNode("solo", ms, cluster.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	s := testServer(t, func(c *Config) {
		c.Cluster = node
		c.FastPath = true
	})

	var snap cluster.Snapshot
	snap.State.Counter = 1000
	snap.State.NonceSeq = 2000
	snap.State.FastEpoch = 3
	snap.State.HaveFast = true
	node.StoreReplica("jump-dev", snap)

	d, err := s.device("jump-dev")
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	counter := d.v.LastCounter()
	fast := d.v.HasFastState()
	d.mu.Unlock()
	if want := snap.State.Counter + cluster.FreshnessSlack; counter != want {
		t.Errorf("adopted counter = %d, want the replica's jumped %d", counter, want)
	}
	if fast {
		t.Error("replica adoption kept the fast-path record — a stale record could be honoured")
	}
	if got := s.Counters().HandoffsReplica; got != 1 {
		t.Errorf("HandoffsReplica = %d, want 1", got)
	}
	if got := s.Counters().HandoffsLive; got != 0 {
		t.Errorf("HandoffsLive = %d, want 0", got)
	}
}

// countingStore wraps the default store to prove the daemon drives every
// lookup through the VerifierStore seam.
type countingStore struct {
	VerifierStore
	gets, puts, removes atomic.Int64
}

func (c *countingStore) Get(id string) (*deviceState, bool) {
	c.gets.Add(1)
	return c.VerifierStore.Get(id)
}

func (c *countingStore) Put(id string, d *deviceState) (*deviceState, bool) {
	c.puts.Add(1)
	return c.VerifierStore.Put(id, d)
}

func (c *countingStore) Remove(id string) (*deviceState, bool) {
	c.removes.Add(1)
	return c.VerifierStore.Remove(id)
}

// TestInjectedStore runs an honest round over an injected VerifierStore
// implementation: the pluggability seam the cluster and any future
// persistent backend sit behind.
func TestInjectedStore(t *testing.T) {
	cs := &countingStore{VerifierStore: NewShardedStore(4)}
	s := testServer(t, func(c *Config) { c.Store = cs })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a := testAgent(t, "store-dev")
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	go a.Serve(ctx, nc) //nolint:errcheck

	waitFor(t, 20*time.Second, "an accepted round through the injected store", func() bool {
		return s.Counters().ResponsesAccepted >= 1
	})
	if cs.gets.Load() == 0 || cs.puts.Load() != 1 {
		t.Errorf("injected store saw gets=%d puts=%d, want gets>0 puts=1", cs.gets.Load(), cs.puts.Load())
	}
	if s.Devices() != 1 {
		t.Errorf("Devices() = %d through injected store", s.Devices())
	}
}
