package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"proverattest/internal/channel"
	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
	"proverattest/internal/transport"
)

// recordTap is an honest channel tap that copies attestation frames as
// they cross the simulated link.
type recordTap struct {
	reqs, resps [][]byte
}

func (r *recordTap) OnSend(msg channel.Message, now sim.Time) []channel.Delivery {
	p := append([]byte(nil), msg.Payload...)
	switch protocol.ClassifyFrame(p) {
	case protocol.FrameAttReq:
		r.reqs = append(r.reqs, p)
	case protocol.FrameAttResp:
		r.resps = append(r.resps, p)
	}
	return []channel.Delivery{{Msg: msg}}
}

// recConn records the raw byte streams crossing a net.Conn, so the test
// can recover the exact frames the daemon put on (and took off) the wire.
type recConn struct {
	net.Conn
	mu     sync.Mutex
	rd, wr bytes.Buffer
}

func (c *recConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.rd.Write(p[:n])
	c.mu.Unlock()
	return n, err
}

func (c *recConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.wr.Write(p[:n])
	c.mu.Unlock()
	return n, err
}

func (c *recConn) streams() (rd, wr []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.rd.Bytes()...), append([]byte(nil), c.wr.Bytes()...)
}

// deframe splits a recorded byte stream back into transport payloads,
// tolerating a partial frame at the tail (the snapshot may race a write).
func deframe(t *testing.T, stream []byte) [][]byte {
	t.Helper()
	r := bytes.NewReader(stream)
	var frames [][]byte
	for {
		payload, err := transport.ReadFrame(r, transport.DefaultMaxFrame)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("deframing recorded stream: %v", err)
			}
			return frames
		}
		frames = append(frames, payload)
	}
}

// TestLoopbackMatchesChannelPath is the determinism check for the wire
// layer: one attest round run over net.Pipe through the daemon and agent
// produces byte-identical request and response frames to the same round
// run over the in-process simulated channel. The transport adds framing
// around the protocol payloads and must change nothing inside them.
func TestLoopbackMatchesChannelPath(t *testing.T) {
	const deviceID = "loopback-dev"
	key := protocol.DeriveDeviceKey(testMaster, deviceID)

	// Channel path: one honest attest round, frames captured by a tap.
	tap := &recordTap{}
	sc, err := core.NewScenario(core.ScenarioConfig{
		Freshness: protocol.FreshCounter,
		Auth:      protocol.AuthHMACSHA1,
		AttestKey: key[:],
		Tap:       tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.IssueAt(sc.K.Now() + sim.Millisecond)
	sc.RunUntil(sc.K.Now() + 10*sim.Second)
	if sc.V.Accepted != 1 || len(tap.reqs) != 1 || len(tap.resps) != 1 {
		t.Fatalf("channel round: accepted=%d reqs=%d resps=%d", sc.V.Accepted, len(tap.reqs), len(tap.resps))
	}

	// Socket path: the same round between daemon and agent over net.Pipe,
	// raw bytes captured on the daemon's side of the pipe.
	s := testServer(t, func(c *Config) {
		c.AttestEvery = time.Hour // exactly one request: the immediate first issue
	})
	client, peer := net.Pipe()
	rec := &recConn{Conn: peer}
	go s.HandleConn(rec)

	a := testAgent(t, deviceID)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.Serve(ctx, client) //nolint:errcheck
	}()
	waitFor(t, 15*time.Second, "the socket round to complete", func() bool {
		return s.Counters().ResponsesAccepted == 1
	})
	cancel()
	<-done

	rdStream, wrStream := rec.streams()
	var sockReqs, sockResps [][]byte
	for _, f := range deframe(t, wrStream) {
		if protocol.ClassifyFrame(f) == protocol.FrameAttReq {
			sockReqs = append(sockReqs, f)
		}
	}
	for _, f := range deframe(t, rdStream) {
		if protocol.ClassifyFrame(f) == protocol.FrameAttResp {
			sockResps = append(sockResps, f)
		}
	}
	if len(sockReqs) != 1 || len(sockResps) != 1 {
		t.Fatalf("socket round: reqs=%d resps=%d", len(sockReqs), len(sockResps))
	}

	if !bytes.Equal(tap.reqs[0], sockReqs[0]) {
		t.Errorf("request frames differ:\n  channel: %x\n  socket:  %x", tap.reqs[0], sockReqs[0])
	}
	if !bytes.Equal(tap.resps[0], sockResps[0]) {
		t.Errorf("response frames differ:\n  channel: %x\n  socket:  %x", tap.resps[0], sockResps[0])
	}
}
