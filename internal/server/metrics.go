package server

import (
	"proverattest/internal/obs"
	"proverattest/internal/protocol"
	"proverattest/internal/transport"
)

// serverMetrics is the daemon's observability surface: every counter the
// serving path touches, as obs instruments registered once at
// construction. The hot-path contract is inherited from internal/obs —
// recording is atomics on preallocated state, 0 allocs/op — so the gate's
// reject paths stay as cheap instrumented as they were bare (pinned by
// the alloc tests in alloc_test.go).
//
// Reject causes are deliberately distinct series of one family
// (attestd_rejects_total{cause=...}): the paper's asymmetry argument is
// per-cause — a malformed frame must die at the parser, an unsolicited
// response at the pending-map miss — and conflated counters cannot show
// where a flood is actually dying.
type serverMetrics struct {
	connsAccepted *obs.Counter

	// Connection rejections by cause (attestd_conns_rejected_total).
	connRejIO        *obs.Counter // first frame never arrived / read error
	connRejHello     *obs.Counter // hello failed to parse
	connRejHelloSlow *obs.Counter // first frame missed the hello deadline (slow-loris)
	connRejPolicy    *obs.Counter // hello declared a mismatched freshness/auth policy
	connRejCap       *obs.Counter // accept-side MaxConns refusal
	connRejDraining   *obs.Counter // refused because the daemon is draining
	connRejDeviceNew  *obs.Counter // per-device verifier construction failed
	connRejDeviceFull *obs.Counter // device table at MaxDevices, new identity refused

	// Evictions of established connections by cause
	// (attestd_evictions_total): the slow-loris defence, post-hello. A
	// peer that stops completing frames (read_stall) or stops draining
	// its socket (write_stall) loses the connection instead of parking a
	// goroutine and an fd forever.
	evictReadStall  *obs.Counter
	evictWriteStall *obs.Counter

	// acceptRetries counts transient listener failures survived by the
	// accept loop (fd pressure, injected faults) rather than fatal exits.
	acceptRetries *obs.Counter

	// draining is 1 from Shutdown's drain start until the daemon is fully
	// closed — the gauge a fleet dashboard watches during rollouts.
	draining *obs.Gauge

	framesIn *obs.Counter

	// Per-frame rejects by cause (attestd_rejects_total).
	rejRateLimited    *obs.Counter // over the per-connection token budget
	rejTierLimited    *obs.Counter // over a tier-wide admission budget
	rejUnknown        *obs.Counter // no recognised frame kind
	rejMalformedResp  *obs.Counter // classified as a response, failed strict decode
	rejBadMeasurement *obs.Counter // decoded fine, measurement/tag mismatch
	rejUnsolicited    *obs.Counter // response answering no outstanding nonce
	rejMalformedStats *obs.Counter // classified as stats, failed strict decode
	rejCommand        *obs.Counter // service-command response rejected
	rejFastMismatch   *obs.Counter // fast response failed the digest/epoch record check
	rejMalformedSwarm *obs.Counter // classified as a swarm response, failed strict decode

	requestsIssued    *obs.Counter
	inflightThrottled *obs.Counter
	requestsAbandoned *obs.Counter
	responsesAccepted *obs.Counter
	responsesFast     *obs.Counter // accepted responses that took the O(1) fast path

	floodInjected *obs.Counter
	statsReports  *obs.Counter
	statsEpochs   *obs.Counter // device counter-reset (reboot) detections

	// Swarm aggregation over the gateway connection: full rounds driven
	// and bisection probes issued to localize a failed aggregate.
	swarmRounds     *obs.Counter
	swarmBisections *obs.Counter

	// Cluster mode: ownership routing and state-handoff outcomes.
	redirects       *obs.Counter // device hellos answered with the owner's address
	handoffsLive    *obs.Counter // devices adopted with exact state from the previous owner
	handoffsReplica *obs.Counter // devices adopted from a replicated snapshot (jumped)
	stateExports    *obs.Counter // device states handed off to a requesting peer
	peerConns       *obs.Counter // peer links accepted from other daemons
	rejDaemonRate   *obs.Counter // frames dropped by the daemon-wide budget

	// Persistence: journal-recovered devices adopted on reconnect, and the
	// latency of the fsyncs the durability policy forces.
	recoveredExact  *obs.Counter // adopted live-exact (fast-path arm preserved)
	recoveredJumped *obs.Counter // adopted via the restart freshness jump
	fsyncLat        *obs.Histogram

	// Admin control-plane actions (attestd_admin_actions_total): the
	// operator's mutations, so a dashboard can correlate a latency or
	// reject-rate change with the override that caused it.
	adminEvicts    *obs.Counter
	adminReattests *obs.Counter
	adminOverrides *obs.Counter
	adminDrains    *obs.Counter

	// gateLat times frames that die at the serving gate; attestLat times
	// accepted attestation rounds issue-to-accept. The mass separation
	// between the two histograms is the paper's asymmetry, live.
	gateLat   *obs.Histogram
	attestLat *obs.Histogram

	transport *transport.Metrics
}

const (
	rejectsHelp   = "Frames rejected by the daemon's serving gate, by cause."
	evictionsHelp = "Established connections evicted by the slow-loris defence, by cause."
	handoffsHelp  = "Device freshness states adopted from the cluster on reconnect, by kind (live = exact from the previous owner, replica = jumped from a replicated snapshot)."
	recoveredHelp = "Journal-recovered devices adopted on reconnect after a daemon restart, by kind (exact = streams continue precisely, jumped = FreshnessSlack forward jump)."

	adminActionsHelp = "Admin control-plane mutations applied, by action."
)

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	const connRejHelp = "Connections refused before any device state existed, by cause."
	return &serverMetrics{
		connsAccepted: reg.Counter("attestd_conns_accepted_total", "Connections whose hello matched the provisioned policy."),

		connRejIO:        reg.Counter("attestd_conns_rejected_total", connRejHelp, obs.L("cause", "io")),
		connRejHello:     reg.Counter("attestd_conns_rejected_total", connRejHelp, obs.L("cause", "hello_malformed")),
		connRejHelloSlow: reg.Counter("attestd_conns_rejected_total", connRejHelp, obs.L("cause", "hello_timeout")),
		connRejPolicy:    reg.Counter("attestd_conns_rejected_total", connRejHelp, obs.L("cause", "policy_mismatch")),
		connRejCap:       reg.Counter("attestd_conns_rejected_total", connRejHelp, obs.L("cause", "conn_cap")),
		connRejDraining:   reg.Counter("attestd_conns_rejected_total", connRejHelp, obs.L("cause", "draining")),
		connRejDeviceNew:  reg.Counter("attestd_conns_rejected_total", connRejHelp, obs.L("cause", "device_init")),
		connRejDeviceFull: reg.Counter("attestd_conns_rejected_total", connRejHelp, obs.L("cause", "device_table_full")),

		evictReadStall:  reg.Counter("attestd_evictions_total", evictionsHelp, obs.L("cause", "read_stall")),
		evictWriteStall: reg.Counter("attestd_evictions_total", evictionsHelp, obs.L("cause", "write_stall")),

		acceptRetries: reg.Counter("attestd_accept_retries_total", "Transient listener failures survived by the accept loop."),
		draining:      reg.Gauge("attestd_draining", "1 while Shutdown is draining inflight requests, 0 otherwise."),

		framesIn: reg.Counter("attestd_frames_total", "Frames read off sockets after the hello."),

		rejRateLimited:    reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "rate_limited")),
		rejTierLimited:    reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "tier_limited")),
		rejUnknown:        reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "unknown_kind")),
		rejMalformedResp:  reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "malformed_response")),
		rejBadMeasurement: reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "bad_measurement")),
		rejUnsolicited:    reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "unsolicited")),
		rejMalformedStats: reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "malformed_stats")),
		rejCommand:        reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "command_rejected")),
		rejFastMismatch:   reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "fast_mismatch")),
		rejMalformedSwarm: reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "malformed_swarm")),

		requestsIssued:    reg.Counter("attestd_requests_issued_total", "Honest attestation requests sent."),
		inflightThrottled: reg.Counter("attestd_inflight_throttled_total", "Issue ticks skipped at the global inflight cap."),
		requestsAbandoned: reg.Counter("attestd_requests_abandoned_total", "Requests retired by timeout."),
		responsesAccepted: reg.Counter("attestd_responses_accepted_total", "Responses whose measurement matched the golden image."),
		responsesFast:     reg.Counter("attestd_responses_fast_total", "Accepted responses that took the O(1) fast path (clean write monitor, no memory MAC)."),

		swarmRounds:     reg.Counter("attestd_swarm_rounds_total", "Swarm aggregate-attestation rounds driven over the gateway connection."),
		swarmBisections: reg.Counter("attestd_swarm_bisections_total", "Bisection probes issued to localize failed swarm aggregates."),

		redirects:       reg.Counter("attestd_redirects_total", "Device hellos answered with the ring owner's address instead of a session."),
		handoffsLive:    reg.Counter("attestd_handoffs_total", handoffsHelp, obs.L("kind", "live")),
		handoffsReplica: reg.Counter("attestd_handoffs_total", handoffsHelp, obs.L("kind", "replica")),
		stateExports:    reg.Counter("attestd_state_exports_total", "Device states handed off to a requesting peer (move semantics)."),
		peerConns:       reg.Counter("attestd_peer_conns_total", "Peer links accepted from other cluster daemons."),
		rejDaemonRate:   reg.Counter("attestd_rejects_total", rejectsHelp, obs.L("cause", "daemon_rate")),

		floodInjected: reg.Counter("attestd_flood_injected_total", "Adversarial frames sent in impersonator mode."),
		statsReports:  reg.Counter("attestd_stats_reports_total", "Agent gate-counter heartbeats received."),
		statsEpochs:   reg.Counter("attestd_stats_epochs_total", "Agent counter resets (reboots) detected and folded into the fleet high-water base."),

		recoveredExact:  reg.Counter("attestd_recovered_devices_total", recoveredHelp, obs.L("kind", "exact")),
		recoveredJumped: reg.Counter("attestd_recovered_devices_total", recoveredHelp, obs.L("kind", "jumped")),

		adminEvicts:    reg.Counter("attestd_admin_actions_total", adminActionsHelp, obs.L("action", "evict")),
		adminReattests: reg.Counter("attestd_admin_actions_total", adminActionsHelp, obs.L("action", "reattest")),
		adminOverrides: reg.Counter("attestd_admin_actions_total", adminActionsHelp, obs.L("action", "tier_override")),
		adminDrains:    reg.Counter("attestd_admin_actions_total", adminActionsHelp, obs.L("action", "drain")),

		gateLat:   reg.Histogram("attestd_gate_seconds", "Service time of frames that died at the serving gate.", nil),
		attestLat: reg.Histogram("attestd_attest_seconds", "Issue-to-accept round-trip of honest attestation requests.", nil),
		fsyncLat:  reg.Histogram("attestd_fsync_seconds", "Latency of journal fsyncs forced by the persistence durability policy.", nil),

		transport: transport.NewMetrics(reg),
	}
}

// registerGauges exposes the daemon state that already has an owner —
// inflight slots, device map sizes, fleet-aggregated agent counters — as
// exposition-time gauge funcs, so the hot path never mirrors them.
//
// The attestd_fleet_* series re-export the agents' own gate counters
// (aggregated by AgentStats, monotonic across device reboots). They are
// labelled by rejection cause where the prover's gate distinguishes one:
// that is the prover-side half of the asymmetry read-out.
func (s *Server) registerGauges(reg *obs.Registry) {
	reg.GaugeFunc("attestd_inflight", "Outstanding attestation requests.",
		func() float64 { return float64(s.Inflight()) })
	reg.GaugeFunc("attestd_devices", "Provers that have ever connected.",
		func() float64 { return float64(s.Devices()) })
	reg.GaugeFunc("attestd_devices_owned", "Devices in the table whose ring owner is this daemon (equals attestd_devices outside cluster mode).",
		func() float64 {
			if s.cl == nil {
				return float64(s.Devices())
			}
			n := 0
			s.store.Range(func(d *deviceState) bool {
				if s.cl.Owns(d.id) {
					n++
				}
				return true
			})
			return float64(n)
		})
	reg.GaugeFunc("attestd_open_conns", "Currently open connections.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		})

	if ps := s.persist; ps != nil {
		// The journal's counters already live behind atomics in the Log;
		// gauge funcs re-export them at scrape time, nothing mirrored on
		// the write path. Monotone values as GaugeFuncs follows the
		// attestd_fleet_* precedent.
		reg.GaugeFunc("attestd_journal_appends_total", "Snapshot records appended to the persistence journal.",
			func() float64 { return float64(ps.Stats().Appends) })
		reg.GaugeFunc("attestd_journal_tombstones_total", "Tombstone records appended to the persistence journal (device departures).",
			func() float64 { return float64(ps.Stats().Tombstones) })
		reg.GaugeFunc("attestd_journal_bytes", "Bytes written to the live persistence journal generation.",
			func() float64 { return float64(ps.Stats().Bytes) })
		reg.GaugeFunc("attestd_journal_compactions_total", "Full-snapshot compactions completed.",
			func() float64 { return float64(ps.Stats().Compactions) })
		reg.GaugeFunc("attestd_journal_replay_skipped_total", "Corrupt journal records skipped during the last replay.",
			func() float64 { return float64(ps.Stats().ReplaySkipped) })
		reg.GaugeFunc("attestd_journal_fsyncs_total", "Explicit fsyncs issued on the persistence journal.",
			func() float64 { return float64(ps.Stats().Fsyncs) })
		reg.GaugeFunc("attestd_recovered_pending", "Journal-recovered devices still waiting for their first reconnect.",
			func() float64 { return float64(ps.RecoveredPending()) })
	}

	const fleetRejHelp = "Fleet-aggregated frames rejected at the provers' anchor gate, by cause (monotonic across reboots)."
	fleet := func(name, help string, pick func(*protocol.StatsReport) uint64, labels ...obs.Label) {
		reg.GaugeFunc(name, help, func() float64 {
			st := s.AgentStats()
			return float64(pick(&st))
		}, labels...)
	}
	fleet("attestd_fleet_received", "Fleet-aggregated request frames submitted to prover gates.",
		func(st *protocol.StatsReport) uint64 { return st.Received })
	fleet("attestd_fleet_measurements", "Fleet-aggregated full memory measurements (the expensive MAC work).",
		func(st *protocol.StatsReport) uint64 { return st.Measurements })
	fleet("attestd_fleet_fast_responses", "Fleet-aggregated O(1) fast-path responses (clean monitor, no memory MAC).",
		func(st *protocol.StatsReport) uint64 { return st.FastResponses })
	fleet("attestd_fleet_gate_rejected", fleetRejHelp,
		func(st *protocol.StatsReport) uint64 { return st.AuthRejected }, obs.L("cause", "auth"))
	fleet("attestd_fleet_gate_rejected", fleetRejHelp,
		func(st *protocol.StatsReport) uint64 { return st.FreshnessRejected }, obs.L("cause", "freshness"))
	fleet("attestd_fleet_gate_rejected", fleetRejHelp,
		func(st *protocol.StatsReport) uint64 { return st.Malformed }, obs.L("cause", "malformed"))
	fleet("attestd_fleet_faults", "Fleet-aggregated bus faults inside the anchor.",
		func(st *protocol.StatsReport) uint64 { return st.Faults })
	fleet("attestd_fleet_commands_executed", "Fleet-aggregated service commands that passed the gate and ran.",
		func(st *protocol.StatsReport) uint64 { return st.CommandsExecuted })
	fleet("attestd_fleet_active_cycles", "Fleet-aggregated MCU cycles spent (energy basis).",
		func(st *protocol.StatsReport) uint64 { return st.ActiveCycles })
	fleet("attestd_fleet_frames_in", "Fleet-aggregated frames the agents pulled off their sockets.",
		func(st *protocol.StatsReport) uint64 { return st.FramesIn })
}
