package server

import (
	"context"
	"io"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"proverattest/internal/obs"
)

// parsePromText parses a Prometheus text exposition into a map keyed by
// the full series string (name plus label set, exactly as exposed) and
// fails the test on any line that does not parse.
func parsePromText(t *testing.T, body string) map[string]float64 {
	t.Helper()
	series := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("series %q has unparseable value %q: %v", key, valStr, err)
		}
		if _, dup := series[key]; dup {
			t.Fatalf("series %q exposed twice", key)
		}
		series[key] = val
	}
	return series
}

// TestMetricsSmoke is the `make metrics-smoke` acceptance check: an
// in-process attestd serving a real agent over TCP, scraped over HTTP,
// with every expected series family present and parseable. It covers the
// three layers the observability tentpole threads through: the daemon's
// own counters/histograms, the agent-reported fleet gauges, and the
// transport codec counters.
func TestMetricsSmoke(t *testing.T) {
	reg := obs.New()
	s := testServer(t, func(c *Config) {
		c.Metrics = reg
		c.AttestEvery = 25 * time.Millisecond
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck

	a := testAgent(t, "metrics-smoke-dev")
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Serve(ctx, nc) //nolint:errcheck

	waitFor(t, 15*time.Second, "an accepted measurement and a stats report", func() bool {
		c := s.Counters()
		return c.ResponsesAccepted >= 1 && c.StatsReports >= 1
	})

	scrape := httptest.NewServer(obs.Handler(s.Metrics()))
	defer scrape.Close()
	resp, err := scrape.Client().Get(scrape.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := parsePromText(t, string(raw))

	expected := []string{
		// Daemon counters.
		"attestd_conns_accepted_total",
		`attestd_conns_rejected_total{cause="policy_mismatch"}`,
		`attestd_conns_rejected_total{cause="conn_cap"}`,
		"attestd_frames_total",
		`attestd_rejects_total{cause="rate_limited"}`,
		`attestd_rejects_total{cause="unknown_kind"}`,
		`attestd_rejects_total{cause="malformed_response"}`,
		`attestd_rejects_total{cause="unsolicited"}`,
		`attestd_rejects_total{cause="malformed_stats"}`,
		"attestd_requests_issued_total",
		"attestd_responses_accepted_total",
		"attestd_stats_reports_total",
		"attestd_stats_epochs_total",
		// Failure-semantics counters (slow-loris, stalls, accept retries).
		`attestd_conns_rejected_total{cause="hello_timeout"}`,
		`attestd_conns_rejected_total{cause="draining"}`,
		`attestd_evictions_total{cause="read_stall"}`,
		`attestd_evictions_total{cause="write_stall"}`,
		"attestd_accept_retries_total",
		// Histograms (bucket/sum/count triplet spot checks).
		`attestd_gate_seconds_bucket{le="+Inf"}`,
		"attestd_gate_seconds_count",
		`attestd_attest_seconds_bucket{le="+Inf"}`,
		"attestd_attest_seconds_count",
		"attestd_attest_seconds_sum",
		// Daemon gauges.
		"attestd_inflight",
		"attestd_devices",
		"attestd_open_conns",
		"attestd_draining",
		// Fast-path and device-table series.
		"attestd_responses_fast_total",
		`attestd_rejects_total{cause="fast_mismatch"}`,
		`attestd_rejects_total{cause="malformed_swarm"}`,
		"attestd_swarm_rounds_total",
		"attestd_swarm_bisections_total",
		`attestd_conns_rejected_total{cause="device_table_full"}`,
		"attestd_fleet_fast_responses",
		// Cluster series (registered standalone too: the counters stay at
		// zero and attestd_devices_owned mirrors attestd_devices).
		"attestd_redirects_total",
		`attestd_handoffs_total{kind="live"}`,
		`attestd_handoffs_total{kind="replica"}`,
		"attestd_state_exports_total",
		"attestd_peer_conns_total",
		`attestd_rejects_total{cause="daemon_rate"}`,
		"attestd_devices_owned",
		// Admission-tier and admin control-plane series (registered even on
		// a single-tier daemon that never takes an admin action).
		`attestd_rejects_total{cause="tier_limited"}`,
		`attestd_tier_admitted_total{tier="default"}`,
		`attestd_admin_actions_total{action="evict"}`,
		`attestd_admin_actions_total{action="reattest"}`,
		`attestd_admin_actions_total{action="tier_override"}`,
		`attestd_admin_actions_total{action="drain"}`,
		// Agent-reported fleet aggregates.
		"attestd_fleet_received",
		"attestd_fleet_measurements",
		`attestd_fleet_gate_rejected{cause="auth"}`,
		`attestd_fleet_gate_rejected{cause="freshness"}`,
		`attestd_fleet_gate_rejected{cause="malformed"}`,
		// Transport codec.
		`transport_frames_total{dir="in"}`,
		`transport_frames_total{dir="out"}`,
		`transport_bytes_total{dir="in"}`,
		`transport_read_errors_total{cause="too_large"}`,
	}
	for _, name := range expected {
		if _, ok := series[name]; !ok {
			t.Errorf("expected series %s missing from scrape", name)
		}
	}
	if t.Failed() {
		t.Logf("scrape body:\n%s", raw)
		t.FailNow()
	}

	// Live values reflect the round the agent completed.
	if series["attestd_responses_accepted_total"] < 1 {
		t.Error("accepted counter not visible in exposition")
	}
	if series["attestd_fleet_measurements"] < 1 {
		t.Error("fleet measurement gauge not visible in exposition")
	}
	if series["attestd_attest_seconds_count"] < 1 {
		t.Error("attest latency histogram recorded nothing")
	}
	if series[`transport_frames_total{dir="in"}`] < 2 {
		t.Error("transport frame counter did not track the session")
	}
	if series["attestd_devices"] != 1 {
		t.Errorf("attestd_devices = %v, want 1", series["attestd_devices"])
	}
}
