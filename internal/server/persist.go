package server

import (
	"sync"
	"sync/atomic"
	"time"

	"proverattest/internal/cluster"
	"proverattest/internal/journal"
)

// PersistentStore is the crash-safe VerifierStore: it delegates all live
// state to an in-memory inner store and journals every device's snapshot
// to an internal/journal.Log, so a restarted standalone daemon keeps its
// freshness streams instead of husking them — the same survival invariant
// cluster handoff provides, without needing a peer.
//
// Writes are write-behind by default: state changes mark the device dirty
// in a coalescing set and a single flusher goroutine journals the current
// snapshot (the cluster pusher's pattern, pointed at disk). The one
// exception is the issue path under fsync=always: there the snapshot is
// appended and fsynced *before* the request frame reaches the wire
// (persistIssue), which is what entitles the next restart to adopt the
// recovered streams live-exact — a counter is never on the wire before it
// is on disk. Under lazier policies restart adoption jumps the streams
// forward instead (cluster.Snapshot.JumpForRestart), which is always
// freshness-safe.
//
// Lock order: wmu, then a device's mu, then recMu. wmu serializes journal
// access so append order equals state-capture order — with monotone
// streams that makes blind last-record-wins replay correct.
type PersistentStore struct {
	inner VerifierStore
	log   *journal.Log
	opts  PersistOptions

	wmu sync.Mutex

	dirtyMu sync.Mutex
	dirty   map[string]struct{}
	kick    chan struct{}

	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// recovered holds replayed devices until their first reconnect claims
	// them (TakeRecovered); recExact is whether claims adopt live-exact.
	// Entries are already jump-adjusted when recExact is false.
	recMu     sync.Mutex
	recovered map[string]cluster.Snapshot
	recExact  bool
}

// PersistOptions tunes OpenPersistentStore.
type PersistOptions struct {
	// Fsync is the durability policy (default FsyncInterval); see the
	// journal package for the trade-offs each makes.
	Fsync journal.FsyncPolicy
	// FsyncInterval is the timer period under FsyncInterval (default 100ms).
	FsyncInterval time.Duration
	// CompactEvery rewrites the full snapshot after this many journal
	// appends (default 4096; <0 disables compaction).
	CompactEvery int
	// Inner is the wrapped live store (default NewShardedStore(16)).
	Inner VerifierStore
}

// OpenPersistentStore replays dir and starts the write-behind flusher.
// Recovered devices wait in a side table until their first reconnect
// adopts them; under-synced recoveries are freshness-jumped here, at open,
// so no later code path can ever see un-jumped stale streams.
func OpenPersistentStore(dir string, opts PersistOptions) (*PersistentStore, error) {
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 4096
	}
	if opts.Inner == nil {
		opts.Inner = NewShardedStore(16)
	}
	log, rec, err := journal.Open(dir, journal.Options{Fsync: opts.Fsync})
	if err != nil {
		return nil, err
	}
	ps := &PersistentStore{
		inner:     opts.Inner,
		log:       log,
		opts:      opts,
		dirty:     make(map[string]struct{}),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		recovered: rec.Snaps,
		recExact:  rec.Exact,
	}
	if !rec.Exact {
		for id, snap := range ps.recovered {
			ps.recovered[id] = snap.JumpForRestart()
		}
	}
	ps.wg.Add(1)
	go ps.flushLoop()
	return ps, nil
}

// VerifierStore delegation. Put/Remove mark the device dirty so inserts
// and departures reach the journal without the server having to remember
// to; the flusher resolves either to a put or a tombstone by looking at
// the store's state at flush time.

func (ps *PersistentStore) Get(deviceID string) (*deviceState, bool) {
	return ps.inner.Get(deviceID)
}

func (ps *PersistentStore) Put(deviceID string, dev *deviceState) (*deviceState, bool) {
	entry, inserted := ps.inner.Put(deviceID, dev)
	if inserted {
		ps.MarkDirty(deviceID)
	}
	return entry, inserted
}

func (ps *PersistentStore) Remove(deviceID string) (*deviceState, bool) {
	d, ok := ps.inner.Remove(deviceID)
	if ok {
		ps.MarkDirty(deviceID)
	}
	return d, ok
}

func (ps *PersistentStore) Range(fn func(*deviceState) bool) { ps.inner.Range(fn) }

func (ps *PersistentStore) Len() int { return ps.inner.Len() }

// TakeRecovered claims a replayed device's snapshot for adoption on its
// first reconnect, reporting whether the adoption is live-exact (the
// fast-path arm survived) or restart-jumped. The claim is journaled
// immediately: from here until the adopter's first MarkDirty flush the
// journal record is the only durable copy, and a compaction in that
// window must not lose the device.
func (ps *PersistentStore) TakeRecovered(deviceID string) (cluster.Snapshot, bool, bool) {
	ps.recMu.Lock()
	snap, ok := ps.recovered[deviceID]
	if ok {
		delete(ps.recovered, deviceID)
	}
	exact := ps.recExact
	ps.recMu.Unlock()
	if !ok {
		return cluster.Snapshot{}, false, false
	}
	ps.wmu.Lock()
	ps.log.Append(deviceID, &snap) //nolint:errcheck // best-effort; the write-behind flush retries
	ps.wmu.Unlock()
	return snap, exact, true
}

// RecoveredPending reports how many replayed devices have not reconnected
// yet (drills assert this drains to zero).
func (ps *PersistentStore) RecoveredPending() int {
	ps.recMu.Lock()
	defer ps.recMu.Unlock()
	return len(ps.recovered)
}

// MarkDirty queues deviceID for the write-behind flusher: an enqueue and
// a non-blocking kick, no I/O, so serving paths stay cheap. Multiple
// marks between flushes coalesce into one journal record of the latest
// snapshot — exactly the cluster replication pusher's semantics.
func (ps *PersistentStore) MarkDirty(deviceID string) {
	if ps.closed.Load() {
		return
	}
	ps.dirtyMu.Lock()
	ps.dirty[deviceID] = struct{}{}
	ps.dirtyMu.Unlock()
	select {
	case ps.kick <- struct{}{}:
	default:
	}
}

// persistIssue makes the just-advanced counter stream durable according
// to policy. Under fsync=always this is the write-ahead barrier: it runs
// after the verifier consumed the counter but before the request frame is
// sent, and does not return until the snapshot is fsynced — so a crash
// can never have put a counter on the wire that the journal does not
// know about, which is what makes exact re-adoption freshness-safe.
func (ps *PersistentStore) persistIssue(dev *deviceState) {
	if ps.opts.Fsync != journal.FsyncAlways {
		ps.MarkDirty(dev.id)
		return
	}
	ps.wmu.Lock()
	ps.appendLocked(dev.id)
	ps.wmu.Unlock()
}

// appendLocked journals deviceID's current state: the live snapshot if
// the store holds it (and it is not a handed-off husk), a tombstone
// otherwise. Callers hold wmu.
func (ps *PersistentStore) appendLocked(deviceID string) {
	d, ok := ps.inner.Get(deviceID)
	if ok {
		d.mu.Lock()
		husk := d.handedOff
		var snap cluster.Snapshot
		if !husk {
			snap = d.snapshotLocked()
		}
		d.mu.Unlock()
		if !husk {
			ps.log.Append(deviceID, &snap) //nolint:errcheck // best-effort on the write-behind path
			return
		}
	}
	ps.log.AppendTombstone(deviceID) //nolint:errcheck
}

// flushLoop is the single writer behind the dirty set: drain, journal,
// compact when due, sync on the interval timer.
func (ps *PersistentStore) flushLoop() {
	defer ps.wg.Done()
	var ticker *time.Ticker
	var tick <-chan time.Time
	if ps.opts.Fsync == journal.FsyncInterval {
		ticker = time.NewTicker(ps.opts.FsyncInterval)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-ps.kick:
			ps.flushDirty()
			ps.maybeCompact()
		case <-tick:
			ps.wmu.Lock()
			ps.log.Sync() //nolint:errcheck
			ps.wmu.Unlock()
		case <-ps.done:
			return
		}
	}
}

func (ps *PersistentStore) flushDirty() {
	ps.dirtyMu.Lock()
	if len(ps.dirty) == 0 {
		ps.dirtyMu.Unlock()
		return
	}
	batch := ps.dirty
	ps.dirty = make(map[string]struct{}, len(batch))
	ps.dirtyMu.Unlock()
	ps.wmu.Lock()
	for id := range batch {
		ps.appendLocked(id)
	}
	ps.wmu.Unlock()
}

// maybeCompact rewrites the full snapshot once enough journal appends
// have accumulated. The rotate-then-capture ordering under wmu is the
// correctness core: no append can interleave between the new generation
// opening and the capture, so every record in that generation reflects
// state at least as new as the snapshot and last-record-wins replay never
// regresses a stream. The snapshot write itself (FinishCompact) runs
// outside wmu — appends continue meanwhile.
func (ps *PersistentStore) maybeCompact() {
	if ps.opts.CompactEvery < 0 || ps.log.AppendsSinceCompact() < ps.opts.CompactEvery {
		return
	}
	ps.wmu.Lock()
	if err := ps.log.BeginCompact(); err != nil {
		ps.wmu.Unlock()
		return
	}
	state := make(map[string]cluster.Snapshot, ps.inner.Len())
	ps.inner.Range(func(d *deviceState) bool {
		d.mu.Lock()
		if !d.handedOff {
			state[d.id] = d.snapshotLocked()
		}
		d.mu.Unlock()
		return true
	})
	// Replayed devices that never reconnected are not in the inner store
	// yet must survive the compaction — their map entry is still the only
	// live copy of their streams.
	ps.recMu.Lock()
	for id, snap := range ps.recovered {
		state[id] = snap
	}
	ps.recMu.Unlock()
	ps.wmu.Unlock()
	ps.log.FinishCompact(state) //nolint:errcheck
}

// Stats exposes the journal's counters for metrics gauges.
func (ps *PersistentStore) Stats() journal.Stats { return ps.log.Stats() }

// bindFsyncObserver routes journal fsync latencies into a histogram. The
// flusher is already running by the time Server.New calls this, so the
// install synchronizes with it the same way every journal call does:
// under wmu.
func (ps *PersistentStore) bindFsyncObserver(fn func(time.Duration)) {
	ps.wmu.Lock()
	ps.log.SetFsyncObserver(fn)
	ps.wmu.Unlock()
}

// Close drains: stop the flusher, journal a final snapshot of every live
// device, and write the clean-shutdown sentinel — which is what lets the
// next open adopt live-exact even under a lazy fsync policy.
func (ps *PersistentStore) Close() error {
	if !ps.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(ps.done)
	ps.wg.Wait()
	ps.flushDirty()
	ps.wmu.Lock()
	defer ps.wmu.Unlock()
	// Belt and braces: the dirty set should already cover every change,
	// but a final full sweep makes clean shutdown exact by construction.
	ps.inner.Range(func(d *deviceState) bool {
		d.mu.Lock()
		husk := d.handedOff
		var snap cluster.Snapshot
		if !husk {
			snap = d.snapshotLocked()
		}
		d.mu.Unlock()
		if !husk {
			ps.log.Append(d.id, &snap) //nolint:errcheck
		}
		return true
	})
	return ps.log.Close()
}

// Kill abandons the store without flushing or writing the sentinel — the
// in-process stand-in for kill -9 that restart drills use. Only what the
// fsync policy already forced to disk survives.
func (ps *PersistentStore) Kill() {
	if !ps.closed.CompareAndSwap(false, true) {
		return
	}
	close(ps.done)
	ps.wg.Wait()
	ps.wmu.Lock()
	ps.log.Kill()
	ps.wmu.Unlock()
}
