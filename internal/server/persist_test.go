package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/cluster"
	"proverattest/internal/core"
	"proverattest/internal/journal"
	"proverattest/internal/protocol"
)

// testDevice builds a store-insertable entry with a real verifier, the
// way Server.device does — store tests need entries whose snapshotLocked
// works, because the persistence flusher journals through it.
func testDevice(t testing.TB, id string) *deviceState {
	t.Helper()
	key := protocol.DeriveDeviceKey(testMaster, id)
	v, err := protocol.NewVerifier(protocol.VerifierConfig{
		Freshness:     protocol.FreshCounter,
		Auth:          protocol.NewHMACAuth(key[:]),
		AttestKey:     key[:],
		Golden:        core.GoldenRAMPattern(),
		AllowFastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &deviceState{id: id, v: v}
}

func openPersistent(t testing.TB, dir string, opts PersistOptions) *PersistentStore {
	t.Helper()
	ps, err := OpenPersistentStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	return ps
}

// --- VerifierStore conformance suite -------------------------------------
//
// Every backend must honour the interface contract the daemon is built
// on: first-insert-wins Put (the winner carries the live freshness
// stream), Remove returning the evicted entry (the handoff primitive),
// and Range tolerating concurrent mutation. Future backends get these
// checks for free by adding a constructor here.

func storeBackends(t *testing.T) map[string]func(t *testing.T) VerifierStore {
	return map[string]func(t *testing.T) VerifierStore{
		"sharded": func(t *testing.T) VerifierStore { return NewShardedStore(8) },
		"persistent": func(t *testing.T) VerifierStore {
			return openPersistent(t, t.TempDir(), PersistOptions{Fsync: journal.FsyncNone})
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("first insert wins", func(t *testing.T) {
				st := mk(t)
				a := testDevice(t, "conf-a")
				b := testDevice(t, "conf-a") // racing construction of the same ID
				got, inserted := st.Put("conf-a", a)
				if !inserted || got != a {
					t.Fatalf("first Put: inserted=%v got=%p want %p", inserted, got, a)
				}
				got, inserted = st.Put("conf-a", b)
				if inserted || got != a {
					t.Fatalf("second Put must lose to the incumbent: inserted=%v got=%p", inserted, got)
				}
				if d, ok := st.Get("conf-a"); !ok || d != a {
					t.Fatalf("Get returned %p, want the winner %p", d, a)
				}
				if st.Len() != 1 {
					t.Fatalf("Len=%d, want 1", st.Len())
				}
			})
			t.Run("remove returns entry", func(t *testing.T) {
				st := mk(t)
				a := testDevice(t, "conf-rm")
				st.Put("conf-rm", a)
				d, ok := st.Remove("conf-rm")
				if !ok || d != a {
					t.Fatalf("Remove: ok=%v got=%p want %p", ok, d, a)
				}
				if _, ok := st.Remove("conf-rm"); ok {
					t.Fatal("second Remove found a ghost entry")
				}
				if _, ok := st.Get("conf-rm"); ok {
					t.Fatal("removed entry still visible")
				}
				if st.Len() != 0 {
					t.Fatalf("Len=%d, want 0", st.Len())
				}
			})
			t.Run("concurrent range tolerance", func(t *testing.T) {
				st := mk(t)
				for i := 0; i < 32; i++ {
					id := fmt.Sprintf("conf-rg-%d", i)
					st.Put(id, testDevice(t, id))
				}
				stop := make(chan struct{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() { // churn inserts and removals during the sweeps
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						id := fmt.Sprintf("conf-churn-%d", i%8)
						if d, ok := st.Remove(id); !ok || d == nil {
							st.Put(id, testDevice(t, id))
						}
					}
				}()
				for i := 0; i < 50; i++ {
					seen := 0
					st.Range(func(d *deviceState) bool {
						if d == nil {
							t.Error("Range visited a nil entry")
							return false
						}
						seen++
						return true
					})
					// The 32 stable entries must always be visible; churned
					// entries may or may not be, per the Range contract.
					if seen < 32 {
						t.Fatalf("sweep %d visited %d entries, want >= 32", i, seen)
					}
				}
				close(stop)
				wg.Wait()
			})
		})
	}
}

// --- satellite 1: sharded store hot-path allocations ----------------------

// TestShardedStoreGetZeroAllocs pins the FNV-1a inlining: Get backs every
// frame's device lookup, and the old hash.Hash32 + []byte(id) pair cost
// two heap objects per call.
func TestShardedStoreGetZeroAllocs(t *testing.T) {
	st := NewShardedStore(16)
	st.Put("alloc-store-dev", testDevice(t, "alloc-store-dev"))
	probe := func() { st.Get("alloc-store-dev") }
	probe()
	if n := testing.AllocsPerRun(1000, probe); n != 0 {
		t.Errorf("shardedStore.Get: %v allocs/op, want 0", n)
	}
	miss := func() { st.Get("alloc-store-miss") }
	miss()
	if n := testing.AllocsPerRun(1000, miss); n != 0 {
		t.Errorf("shardedStore.Get miss: %v allocs/op, want 0", n)
	}
}

// TestGateRejectZeroAllocsOverPersistentStore re-pins the daemon's
// attacker-reachable reject paths with the persistence backend slotted
// in: the store wrapper must add nothing to frames that die at the gate.
func TestGateRejectZeroAllocsOverPersistentStore(t *testing.T) {
	ps := openPersistent(t, t.TempDir(), PersistOptions{Fsync: journal.FsyncNone})
	s, err := New(Config{
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		Golden:       core.GoldenRAMPattern(),
		Store:        ps,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := s.device("alloc-persist-dev")
	if err != nil {
		t.Fatal(err)
	}
	unknown := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	allocsPerFrame(t, "unknown frame over persistent store", 0,
		func() { s.handleFrame(dev, nil, unknown) })
	unsolicited := (&protocol.AttResp{Nonce: 0xFEED}).Encode()
	allocsPerFrame(t, "unsolicited response over persistent store", 0,
		func() { s.handleFrame(dev, nil, unsolicited) })
}

// --- satellite 2: fleet stats monotonicity under churn --------------------

// TestAgentStatsMonotoneUnderChurn races the stats sweep against reboot
// folds and store churn. Historically the sweep read a device's
// high-water base under its lock but the latest report after releasing
// it; an onStats reboot fold interleaving between the two reads dropped
// a whole epoch from the total — a non-monotone dip in the fleet gauges.
func TestAgentStatsMonotoneUnderChurn(t *testing.T) {
	s := testServer(t, nil)
	dev, err := s.device("stats-churn-dev")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Reboot churn: counters climb within an epoch, then reset to a small
	// value, which onStats detects as a reboot and folds into the base.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var v uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < 4; i++ {
				v += 10
				frame := (&protocol.StatsReport{Received: v, Measurements: v}).Encode()
				s.handleFrame(dev, nil, frame)
			}
			v = 1 // reboot: cumulative counters restart near zero
		}
	}()

	// Store churn: handoff-style insert/remove of zero-stats devices keeps
	// the Range stripe snapshots moving under the sweep.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("stats-ghost-%d", i%4)
			if _, ok := s.store.Remove(id); !ok {
				s.store.Put(id, testDevice(t, id))
			}
		}
	}()

	var last uint64
	for i := 0; i < 3000; i++ {
		got := s.AgentStats().Received
		if got < last {
			t.Fatalf("fleet Received regressed: %d -> %d (sweep %d)", last, got, i)
		}
		last = got
	}
	close(stop)
	wg.Wait()
}

// --- persistence unit coverage -------------------------------------------

// TestPersistentStoreRoundTrip drives state through a clean close and
// reopen: the recovered snapshot must be exact, preserve the fast-path
// arm, and continue the counter stream precisely.
func TestPersistentStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ps, err := OpenPersistentStore(dir, PersistOptions{Fsync: journal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice(t, "rt-dev")
	dev.v.ImportState(protocol.VerifierState{
		Counter: 77, NonceSeq: 78,
		HaveFast: true, FastEpoch: 3,
	})
	ps.Put("rt-dev", dev)
	gone := testDevice(t, "rt-gone")
	ps.Put("rt-gone", gone)
	ps.Remove("rt-gone")
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	ps2 := openPersistent(t, dir, PersistOptions{Fsync: journal.FsyncNone})
	if n := ps2.RecoveredPending(); n != 1 {
		t.Fatalf("RecoveredPending=%d, want 1 (tombstoned device must not recover)", n)
	}
	snap, exact, ok := ps2.TakeRecovered("rt-dev")
	if !ok || !exact {
		t.Fatalf("TakeRecovered: ok=%v exact=%v, want both", ok, exact)
	}
	if snap.State.Counter != 77 || snap.State.NonceSeq != 78 {
		t.Fatalf("streams not exact: %+v", snap.State)
	}
	if !snap.State.HaveFast || snap.State.FastEpoch != 3 {
		t.Fatalf("clean close must preserve the fast-path arm: %+v", snap.State)
	}
	if _, _, ok := ps2.TakeRecovered("rt-dev"); ok {
		t.Fatal("TakeRecovered claimed the same device twice")
	}
	if _, _, ok := ps2.TakeRecovered("rt-gone"); ok {
		t.Fatal("tombstoned device recovered")
	}
}

// TestPersistentStoreKillJumpsStreams kills an under-synced store and
// asserts recovery applies the restart jump: streams move forward by
// FreshnessSlack and the fast arm is dropped — never replayed live.
func TestPersistentStoreKillJumpsStreams(t *testing.T) {
	dir := t.TempDir()
	ps, err := OpenPersistentStore(dir, PersistOptions{Fsync: journal.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice(t, "kill-dev")
	dev.v.ImportState(protocol.VerifierState{
		Counter: 100, NonceSeq: 200,
		HaveFast: true, FastEpoch: 5,
	})
	ps.Put("kill-dev", dev)
	ps.MarkDirty("kill-dev")
	waitFor(t, 5*time.Second, "write-behind flush", func() bool {
		return ps.Stats().Appends > 0
	})
	ps.Kill()

	ps2 := openPersistent(t, dir, PersistOptions{Fsync: journal.FsyncNone})
	snap, exact, ok := ps2.TakeRecovered("kill-dev")
	if !ok {
		t.Fatal("device not recovered after kill")
	}
	if exact {
		t.Fatal("kill without sentinel under FsyncNone must not be exact")
	}
	if snap.State.Counter < 100+cluster.FreshnessSlack || snap.State.NonceSeq < 200+cluster.FreshnessSlack {
		t.Fatalf("streams not jumped: %+v", snap.State)
	}
	if snap.State.HaveFast {
		t.Fatal("stale fast-path arm must be dropped on a jumped recovery")
	}
}

// TestPersistentStoreCompactionSurvivesRestart pushes enough appends to
// trigger compaction, then restarts and checks nothing was lost —
// including a recovered-but-never-reconnected device, which only the
// compaction capture keeps alive once old journal generations are pruned.
func TestPersistentStoreCompactionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ps, err := OpenPersistentStore(dir, PersistOptions{Fsync: journal.FsyncNone, CompactEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice(t, "cp-dev")
	dev.v.ImportState(protocol.VerifierState{Counter: 5, NonceSeq: 5})
	ps.Put("cp-dev", dev)
	for i := 0; i < 40; i++ {
		dev.mu.Lock()
		st := dev.v.ExportState()
		st.Counter++
		st.NonceSeq++
		dev.v.ImportState(st)
		dev.mu.Unlock()
		ps.MarkDirty("cp-dev")
		time.Sleep(time.Millisecond)
	}
	waitFor(t, 10*time.Second, "a compaction", func() bool {
		return ps.Stats().Compactions > 0
	})
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without claiming cp-dev, run long enough to compact again,
	// and make sure the unclaimed recovered device survives that too.
	ps2, err := OpenPersistentStore(dir, PersistOptions{Fsync: journal.FsyncNone, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	other := testDevice(t, "cp-other")
	ps2.Put("cp-other", other)
	for i := 0; i < 20; i++ {
		ps2.MarkDirty("cp-other")
		time.Sleep(time.Millisecond)
	}
	waitFor(t, 10*time.Second, "second compaction", func() bool {
		return ps2.Stats().Compactions > 0
	})
	if err := ps2.Close(); err != nil {
		t.Fatal(err)
	}

	ps3 := openPersistent(t, dir, PersistOptions{Fsync: journal.FsyncNone})
	snap, _, ok := ps3.TakeRecovered("cp-dev")
	if !ok {
		t.Fatal("unclaimed recovered device lost across compaction")
	}
	if snap.State.Counter < 45 {
		t.Fatalf("counter=%d, want >= 45 (last journaled state)", snap.State.Counter)
	}
	if _, _, ok := ps3.TakeRecovered("cp-other"); !ok {
		t.Fatal("cp-other lost")
	}
}

// --- the in-process kill -9 restart drill ---------------------------------

// runRestartDrill is the acceptance scenario from the issue: agents
// attest against a persistent daemon, the daemon dies mid-traffic without
// any flush (Kill == kill -9), a new daemon reopens the same state
// directory on the same address, and the *same* agent processes — whose
// trust anchors remember every counter they have ever seen — must accept
// the restarted daemon's requests with zero freshness rejects.
func runRestartDrill(t *testing.T, policy journal.FsyncPolicy) (c Counters, fleet protocol.StatsReport) {
	t.Helper()
	dir := t.TempDir()
	const devices = 4

	opts := PersistOptions{Fsync: policy, FsyncInterval: 10 * time.Millisecond, CompactEvery: 64}
	ps1, err := OpenPersistentStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mkServer := func(ps *PersistentStore) *Server {
		s, err := New(Config{
			Freshness:    protocol.FreshCounter,
			Auth:         protocol.AuthHMACSHA1,
			MasterSecret: testMaster,
			Golden:       core.GoldenRAMPattern(),
			AttestEvery:  10 * time.Millisecond,
			Store:        ps,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	srv1 := mkServer(ps1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv1.Serve(ln) //nolint:errcheck

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agents := make([]*agent.Agent, devices)
	var wg sync.WaitGroup
	for i := range agents {
		a := testAgent(t, fmt.Sprintf("drill-dev-%d", i))
		agents[i] = a
		wg.Add(1)
		go func() {
			defer wg.Done()
			dial := func(ctx context.Context) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "tcp", addr)
			}
			a.Run(ctx, dial, agent.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}) //nolint:errcheck
		}()
	}

	// Phase 1: every device completes accepted rounds, so every stream has
	// advanced past its initial state when the axe falls.
	waitFor(t, 20*time.Second, "pre-kill accepted rounds", func() bool {
		return srv1.Counters().ResponsesAccepted >= devices*3
	})

	// kill -9: no drain, no sentinel, no final fsync. Close the server
	// first so no serving goroutine touches the store mid-kill — exactly a
	// process death from the agents' point of view (their connections drop
	// and they begin redialling).
	srv1.Close()
	ps1.Kill()

	ps2, err := OpenPersistentStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := ps2.RecoveredPending(); n != devices {
		t.Fatalf("recovered %d devices, want %d", n, devices)
	}
	srv2 := mkServer(ps2)
	defer func() {
		srv2.Close()
		ps2.Close()
	}()
	// The listener port is free (srv1.Close closed it); rebind it so the
	// agents' redial loops land on the restarted daemon unchanged.
	var ln2 net.Listener
	waitFor(t, 10*time.Second, "rebind of the drill address", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	go srv2.Serve(ln2) //nolint:errcheck

	// Phase 2: the same agents must reconnect and complete accepted rounds
	// against the restarted daemon.
	waitFor(t, 20*time.Second, "post-restart accepted rounds", func() bool {
		return srv2.Counters().ResponsesAccepted >= devices*3
	})
	waitFor(t, 10*time.Second, "all recovered devices claimed", func() bool {
		return ps2.RecoveredPending() == 0
	})
	cancel()
	wg.Wait()

	// The freshness verdict comes from the provers themselves: their
	// anchors saw every counter both daemons ever issued, and a single
	// replayed or stale one would land on FreshnessRejected.
	for _, a := range agents {
		fleet.Accumulate(&[]protocol.StatsReport{a.Snapshot()}[0])
	}
	return srv2.Counters(), fleet
}

func TestRestartDrillFsyncAlways(t *testing.T) {
	c, fleet := runRestartDrill(t, journal.FsyncAlways)
	if fleet.FreshnessRejected != 0 {
		t.Fatalf("freshness rejects after restart: %d", fleet.FreshnessRejected)
	}
	// Write-ahead journaling entitles every recovery to exact adoption.
	if c.RecoveredExact != 4 || c.RecoveredJumped != 0 {
		t.Fatalf("adoptions: exact=%d jumped=%d, want 4/0", c.RecoveredExact, c.RecoveredJumped)
	}
}

func TestRestartDrillFsyncInterval(t *testing.T) {
	c, fleet := runRestartDrill(t, journal.FsyncInterval)
	if fleet.FreshnessRejected != 0 {
		t.Fatalf("freshness rejects after restart: %d", fleet.FreshnessRejected)
	}
	// An interval-synced journal killed without a sentinel may have lost
	// its tail: every recovery must take the jump, never replay live.
	if c.RecoveredJumped != 4 || c.RecoveredExact != 0 {
		t.Fatalf("adoptions: exact=%d jumped=%d, want 0/4", c.RecoveredExact, c.RecoveredJumped)
	}
}
