// Package server implements attestd, the verifier daemon of the networked
// deployment: it accepts many concurrent prover-agent connections
// (internal/agent dials in — the NAT-friendly direction for embedded
// fleets), keeps per-prover protocol.Verifier state behind a sharded lock
// so freshness decisions stay server-side across reconnects (the TOCTOU
// argument for stateful verifiers), issues authenticated attestation
// requests on a schedule, and validates the measurement responses.
//
// Two defensive layers sit in front of the per-device verifier state,
// mirroring the prover's cheap-gate-before-expensive-work principle on the
// verifier side: a per-connection token-bucket rate limit (a chatty or
// hostile agent cannot monopolise the daemon), and a global inflight cap
// (the daemon never holds more outstanding requests — each of which costs
// a golden-image MAC to validate — than it budgeted for).
//
// A flood mode turns the daemon into the paper's §3.1 verifier
// impersonator, driving forged, replayed and malformed frames at connected
// agents over the real socket so the Table 2 asymmetry can be demonstrated
// end-to-end over TCP; see FloodConfig.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"proverattest/internal/cluster"
	"proverattest/internal/crypto/ecc"
	"proverattest/internal/obs"
	"proverattest/internal/protocol"
	"proverattest/internal/transport"
)

// FloodConfig turns the daemon into a verifier impersonator: after a short
// honest head (so the agent performs some legitimate MAC work to compare
// against), it floods each connected agent with adversarial frames.
type FloodConfig struct {
	// Total is the number of flood frames per connection (0 = until the
	// connection closes).
	Total int
	// RatePerSec paces the flood (0 = as fast as the socket accepts).
	RatePerSec float64
	// HonestHead is the number of honest requests issued before the flood
	// (default 1; the replay family needs at least one genuine frame to
	// capture).
	HonestHead int
	// Forge, Replay and Malformed select the frame families to cycle
	// through. All false selects all three.
	Forge, Replay, Malformed bool
}

func (f FloodConfig) families() []floodFamily {
	if !f.Forge && !f.Replay && !f.Malformed {
		f.Forge, f.Replay, f.Malformed = true, true, true
	}
	var fams []floodFamily
	if f.Forge {
		fams = append(fams, floodForge)
	}
	if f.Replay {
		fams = append(fams, floodReplay)
	}
	if f.Malformed {
		fams = append(fams, floodMalformed)
	}
	return fams
}

type floodFamily int

const (
	floodForge floodFamily = iota
	floodReplay
	floodMalformed
)

// Config assembles the daemon.
type Config struct {
	// Freshness and Auth are the deployment's provisioned policy; hellos
	// declaring anything else are refused. FreshTimestamp is not supported
	// on the socket path (the simulated prover clock does not track wall
	// time).
	Freshness protocol.FreshnessKind
	Auth      protocol.AuthKind
	// MasterSecret derives each device's K_Attest
	// (protocol.DeriveDeviceKey); required.
	MasterSecret []byte
	// Golden is the expected measured-memory image shared by the fleet
	// (core.GoldenRAMPattern for simulated agents); required.
	Golden []byte
	// ECDSAKey signs requests when Auth == AuthECDSA.
	ECDSAKey *ecc.PrivateKey

	// FastPath lets per-device verifiers grant the RATA-style O(1)
	// fast-path response to provers with a write monitor: once a device's
	// full measurement verifies, subsequent requests permit a MAC over
	// (request, last verified digest, monitor epoch) instead of the
	// full-memory MAC. Full-MAC-only provers are unaffected — they ignore
	// the permission bit and the daemon still verifies their full
	// measurements.
	FastPath bool

	// Shards is the verifier-state store stripe count (default 16), used
	// when Store is nil.
	Shards int
	// Store is the per-device verifier-state backend (default: the
	// striped in-memory store, NewShardedStore(Shards)).
	Store VerifierStore

	// Cluster, when non-nil, puts the daemon in cluster mode: it serves
	// only the devices the consistent-hash ring assigns to it, redirects
	// other devices' hellos to their owners, answers peers' state-handoff
	// requests, and replicates freshness snapshots to each device's ring
	// successor. See internal/cluster and PROTOCOL.md "Cluster ownership
	// & state handoff".
	Cluster *cluster.Node

	// MaxRatePerSec caps the daemon-wide inbound frame admission rate
	// across all connections (0 = unlimited). It models a per-daemon
	// provisioned serving budget: where the per-connection bucket protects
	// the daemon from one hostile peer, this bucket protects the box from
	// the aggregate — and in cluster benchmarks it is what makes
	// frames/sec capacity a per-daemon quantity that must add up
	// linearly across daemons. Over-budget frames are dropped at the gate
	// and counted (attestd_rejects_total{cause="daemon_rate"}).
	MaxRatePerSec float64
	// MaxRateBurst is the daemon-wide bucket depth (default
	// max(64, MaxRatePerSec)).
	MaxRateBurst int
	// MaxConns bounds concurrent connections (default 1024).
	MaxConns int
	// MaxDevices caps the device table (default 4096). Device state is
	// created at hello time for any claimed ID and each entry holds a
	// golden-image copy, so an unauthenticated peer inventing IDs could
	// otherwise grow daemon memory without bound; hellos past the cap are
	// refused with conns_rejected{cause="device_table_full"}.
	MaxDevices int
	// MaxInflight caps outstanding requests across all provers — each
	// outstanding request is a future golden-image MAC the daemon has
	// committed to computing (default 256).
	MaxInflight int
	// PerConnRatePerSec is each connection's inbound-frame budget; frames
	// over budget are dropped and counted, the connection stays up
	// (0 = unlimited). When Tiers is set this field is ignored — each
	// tier carries its own per-connection budget.
	PerConnRatePerSec float64
	// PerConnBurst is the token-bucket depth (default max(16, rate)).
	PerConnBurst int

	// Tiers partitions the fleet into admission tiers, each with its own
	// tier-wide and per-connection budgets (see TierSpec). nil selects
	// the implicit single-tier policy built from PerConnRatePerSec /
	// PerConnBurst, whose admission decisions are identical to the old
	// flat limiter. The tier-isolation property — a flooding tier
	// exhausts its own budget without moving another tier's authentic
	// latency — is what the -tier-isolation loadgen drill proves.
	Tiers *TierPolicy

	// AttestEvery is the per-prover attestation period (default 1 s).
	AttestEvery time.Duration
	// RequestTimeout abandons an unanswered request so its inflight slot
	// frees and a later round can retry with a fresh request (default 10 s).
	RequestTimeout time.Duration

	// MaxFrame, ReadTimeout and WriteTimeout parameterise the transport
	// (defaults: transport.DefaultMaxFrame, 30 s, 10 s).
	MaxFrame     uint32
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// HelloTimeout bounds the wait for a connection's first frame
	// (default 5 s). A fresh connection has proven nothing yet, so it gets
	// a far shorter leash than the steady-state ReadTimeout: a slow-loris
	// peer that dribbles bytes without ever completing a hello is cut off
	// here instead of holding an fd for ReadTimeout.
	HelloTimeout time.Duration

	// Flood, when non-nil, selects impersonator mode instead of the honest
	// issue schedule.
	Flood *FloodConfig

	// Swarm, when non-nil, additionally provisions the daemon as a swarm
	// verifier: aggregate attestation rounds are driven through the
	// spanning-tree root's ("gateway") connection — one request frame and
	// one aggregate response per round for the whole fleet, with
	// bisection probes on the same connection when an aggregate fails.
	// The 1:1 issue schedule still runs for directly connected devices.
	Swarm *SwarmConfig

	// Metrics is the registry the daemon registers its series on (see
	// internal/obs); nil gives the daemon a private registry. Recording is
	// always on — it is atomics-only and allocation-free, so there is
	// nothing to turn off — the registry only decides where a scrape
	// endpoint (attestd -metrics) can read the series from.
	Metrics *obs.Registry
}

// Counters is a snapshot of the daemon's observable state, the
// verifier-side half of the experiment read-out. The prover-side half
// (rejected-at-gate by cause, MAC work) is aggregated from agent stats
// frames; see Server.AgentStats. The same values — plus latency
// histograms — are exported as Prometheus series through the obs registry
// (see Config.Metrics and Server.Metrics).
//
// Every reject cause is a distinct counter: malformed frames, unknown
// frame kinds, unsolicited responses and rate-limited frames each die at
// a different stage of the gate, and the asymmetry argument is per-stage.
// The historical roll-ups (ConnsRejected, ResponsesRejected) remain as
// sums of their causes.
type Counters struct {
	ConnsAccepted uint64 // hellos accepted
	ConnsRejected uint64 // sum of all connection-refusal causes below

	HellosMalformed uint64 // first frame unreadable or not a parseable hello
	HelloTimeouts   uint64 // first frame missed the hello deadline (slow-loris)
	PolicyMismatch  uint64 // hello declared the wrong freshness/auth policy
	ConnsOverCap    uint64 // accept-side MaxConns refusals
	DeviceTableFull uint64 // new device identities refused at MaxDevices

	Evictions     uint64 // established connections cut for read/write stalls
	AcceptRetries uint64 // transient listener failures survived by the accept loop

	FramesIn      uint64 // frames read off sockets (post-hello)
	RateLimited   uint64 // frames dropped by the per-connection budget
	TierLimited   uint64 // frames dropped by a tier-wide budget
	UnknownFrames uint64 // frames of no recognised kind

	MalformedFrames uint64 // classified frames failing strict decode (responses + stats)

	RequestsIssued    uint64 // honest attestation requests sent
	InflightThrottled uint64 // issue ticks skipped at the global cap
	RequestsAbandoned uint64 // requests retired by timeout

	ResponsesAccepted     uint64 // measurements matching the golden image
	ResponsesFast         uint64 // accepted responses that took the O(1) fast path
	ResponsesRejected     uint64 // malformed + mismatched + fast-mismatched + rejected command responses
	ResponsesMalformed    uint64 // responses failing strict decode
	ResponsesMismatched   uint64 // well-formed responses with a wrong measurement
	ResponsesFastRejected uint64 // fast responses failing the digest/epoch record check
	ResponsesUnsolicited  uint64 // responses to no outstanding nonce

	FloodInjected uint64 // adversarial frames sent (flood mode)
	StatsReports  uint64 // agent stats frames received
	StatsEpochs   uint64 // agent counter resets (reboots) detected

	SwarmRounds     uint64 // aggregate rounds driven over the gateway connection
	SwarmBisections uint64 // bisection probes issued to localize failed aggregates

	Redirects         uint64 // device hellos answered with the owner's address (cluster mode)
	HandoffsLive      uint64 // devices adopted with exact state from the previous owner
	HandoffsReplica   uint64 // devices adopted from a replicated snapshot (jumped)
	StateExports      uint64 // device states handed off to a requesting peer
	PeerConns         uint64 // peer links accepted from other daemons
	DaemonRateLimited uint64 // frames dropped by the daemon-wide budget (MaxRatePerSec)

	RecoveredExact  uint64 // journal-recovered devices adopted live-exact on reconnect
	RecoveredJumped uint64 // journal-recovered devices adopted with a restart freshness jump
}

func (m *serverMetrics) snapshot() Counters {
	helloBad := m.connRejIO.Load() + m.connRejHello.Load()
	respMalformed := m.rejMalformedResp.Load()
	statsMalformed := m.rejMalformedStats.Load()
	mismatched := m.rejBadMeasurement.Load()
	fastMismatched := m.rejFastMismatch.Load()
	return Counters{
		ConnsAccepted: m.connsAccepted.Load(),
		ConnsRejected: helloBad + m.connRejHelloSlow.Load() + m.connRejPolicy.Load() +
			m.connRejCap.Load() + m.connRejDraining.Load() + m.connRejDeviceNew.Load() +
			m.connRejDeviceFull.Load(),
		HellosMalformed: helloBad,
		HelloTimeouts:   m.connRejHelloSlow.Load(),
		PolicyMismatch:  m.connRejPolicy.Load(),
		ConnsOverCap:    m.connRejCap.Load(),
		DeviceTableFull: m.connRejDeviceFull.Load(),

		Evictions:     m.evictReadStall.Load() + m.evictWriteStall.Load(),
		AcceptRetries: m.acceptRetries.Load(),

		FramesIn:        m.framesIn.Load(),
		RateLimited:     m.rejRateLimited.Load(),
		TierLimited:     m.rejTierLimited.Load(),
		UnknownFrames:   m.rejUnknown.Load(),
		MalformedFrames: respMalformed + statsMalformed + m.rejMalformedSwarm.Load(),

		RequestsIssued:    m.requestsIssued.Load(),
		InflightThrottled: m.inflightThrottled.Load(),
		RequestsAbandoned: m.requestsAbandoned.Load(),

		ResponsesAccepted:     m.responsesAccepted.Load(),
		ResponsesFast:         m.responsesFast.Load(),
		ResponsesRejected:     respMalformed + mismatched + fastMismatched + m.rejCommand.Load(),
		ResponsesMalformed:    respMalformed,
		ResponsesMismatched:   mismatched,
		ResponsesFastRejected: fastMismatched,
		ResponsesUnsolicited:  m.rejUnsolicited.Load(),

		FloodInjected: m.floodInjected.Load(),
		StatsReports:  m.statsReports.Load(),
		StatsEpochs:   m.statsEpochs.Load(),

		SwarmRounds:     m.swarmRounds.Load(),
		SwarmBisections: m.swarmBisections.Load(),

		Redirects:         m.redirects.Load(),
		HandoffsLive:      m.handoffsLive.Load(),
		HandoffsReplica:   m.handoffsReplica.Load(),
		StateExports:      m.stateExports.Load(),
		PeerConns:         m.peerConns.Load(),
		DaemonRateLimited: m.rejDaemonRate.Load(),

		RecoveredExact:  m.recoveredExact.Load(),
		RecoveredJumped: m.recoveredJumped.Load(),
	}
}

// deviceState is one prover's server-side state. It outlives connections:
// a reconnecting device resumes its nonce/counter stream, which is what
// keeps replayed responses from a previous session rejectable.
//
// The verifier lives behind the entry's own mutex (the VerifierStore
// guards only its map); lastReq and lastStats are atomic pointers to
// immutable values so the stats-heartbeat and flood-replay paths neither
// take nor lengthen that lock.
type deviceState struct {
	id string
	mu sync.Mutex

	v       *protocol.Verifier
	lastReq atomic.Pointer[[]byte] // last honest request frame (replay source; stored slice is never mutated)

	// handedOff flips (under mu) when a peer daemon has taken this
	// device's state: the entry is a husk, and issueOne must not advance
	// the counter stream the new owner now carries — a counter consumed
	// here after the export would collide with one the new owner issues.
	handedOff bool

	// lastStats is the latest agent-reported gate-counter snapshot;
	// statsBase accumulates the final snapshot of every *previous* counter
	// epoch (a reboot resets the agent's counters to zero, which onStats
	// detects as a regression and folds into the base). Exported fleet
	// aggregates are base + latest, which is monotonic across reboots.
	// statsBase and statsEpochs are guarded by mu.
	lastStats   atomic.Pointer[protocol.StatsReport]
	statsBase   protocol.StatsReport
	statsEpochs uint64

	// issuedAtNs is the wall-clock ns timestamp of the most recent honest
	// request issue, the start mark for the attest-latency histogram.
	issuedAtNs atomic.Int64

	// tier is the admission tier this device resolved into, set at
	// device creation and re-resolved at each hello (the advertisement
	// can only matter when no server-side rule claims the ID). An atomic
	// pointer so handleFrame reads it without touching mu.
	tier atomic.Pointer[tier]

	// kick asks the device's issue loop for an immediate round instead
	// of waiting out the AttestEvery tick — the admin API's lever for
	// force-reattest and for tearing down an evicted device's session
	// promptly. Buffered so kicking never blocks.
	kick chan struct{}
}

// setTier moves the device between tiers, keeping the per-tier device
// population counts exact.
func (d *deviceState) setTier(t *tier) {
	if old := d.tier.Swap(t); old != t {
		if old != nil {
			old.devices.Add(-1)
		}
		if t != nil {
			t.devices.Add(1)
		}
	}
}

// kickIssue nudges the issue loop without blocking; a kick already
// pending is the same kick.
func (d *deviceState) kickIssue() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

func (d *deviceState) withLock(fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn()
}

// Server is the verifier daemon.
type Server struct {
	cfg   Config
	store VerifierStore

	// cl is the daemon's cluster identity (nil outside cluster mode).
	cl *cluster.Node

	// persist is set when Config.Store is a *PersistentStore: the serving
	// paths then feed it dirty marks (and, under fsync=always, the
	// write-ahead barrier on the issue path). nil keeps every hot path
	// exactly as it was — one pointer compare per site.
	persist *PersistentStore

	// dBucket is the daemon-wide admission bucket (nil when
	// Config.MaxRatePerSec is 0, which keeps the single-daemon serving
	// path untouched).
	dBucket *lockedBucket

	// tiers is the compiled admission-tier policy (never nil; a flat
	// config compiles to the implicit single default tier).
	tiers *tierSet

	// deviceCount tracks the device-table population, enforcing
	// Config.MaxDevices without a global sweep on every hello.
	deviceCount atomic.Int64

	inflight atomic.Int64
	reg      *obs.Registry
	m        *serverMetrics

	// swarm is the aggregate-attestation coordinator (nil unless
	// Config.Swarm provisioned one).
	swarm *swarmCoordinator

	// draining flips once, when Shutdown starts: the accept loop refuses
	// new connections and the issue loops stop committing to new requests
	// (drainCh is closed), while established connections stay up so their
	// outstanding verdicts can flush.
	draining atomic.Bool
	drainCh  chan struct{}

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ErrClosed is returned by Serve after Close.
var ErrClosed = errors.New("server: closed")

// New validates the configuration and builds the daemon.
func New(cfg Config) (*Server, error) {
	if len(cfg.MasterSecret) == 0 {
		return nil, errors.New("server: MasterSecret is required (per-device key derivation)")
	}
	if len(cfg.Golden) == 0 {
		return nil, errors.New("server: Golden image is required")
	}
	if cfg.Freshness == protocol.FreshTimestamp {
		return nil, errors.New("server: timestamp freshness is not supported over the socket path")
	}
	if cfg.Auth == protocol.AuthECDSA && cfg.ECDSAKey == nil {
		return nil, errors.New("server: ECDSA auth needs the signing key")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 1024
	}
	if cfg.MaxDevices <= 0 {
		cfg.MaxDevices = 4096
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.AttestEvery <= 0 {
		cfg.AttestEvery = time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 5 * time.Second
	}
	if cfg.PerConnBurst <= 0 {
		cfg.PerConnBurst = 16
		if int(cfg.PerConnRatePerSec) > cfg.PerConnBurst {
			cfg.PerConnBurst = int(cfg.PerConnRatePerSec)
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	store := cfg.Store
	if store == nil {
		store = NewShardedStore(cfg.Shards)
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		cl:      cfg.Cluster,
		conns:   make(map[net.Conn]struct{}),
		drainCh: make(chan struct{}),
		reg:     reg,
		m:       newServerMetrics(reg),
	}
	tiers, err := buildTiers(cfg.Tiers, cfg.PerConnRatePerSec, cfg.PerConnBurst, reg)
	if err != nil {
		return nil, err
	}
	s.tiers = tiers
	if ps, ok := store.(*PersistentStore); ok {
		s.persist = ps
		ps.bindFsyncObserver(func(d time.Duration) { s.m.fsyncLat.Observe(d) })
	}
	if cfg.MaxRatePerSec > 0 {
		burst := float64(cfg.MaxRateBurst)
		if burst <= 0 {
			burst = 64
			if cfg.MaxRatePerSec > burst {
				burst = cfg.MaxRatePerSec
			}
		}
		s.dBucket = newLockedBucket(cfg.MaxRatePerSec, burst)
	}
	if s.cl != nil {
		// The replication pusher reads each dirty device's current
		// snapshot straight out of this daemon's store.
		s.cl.BindSource(s.snapshotFor)
	}
	if cfg.Swarm != nil {
		sc, err := newSwarmCoordinator(&s.cfg)
		if err != nil {
			return nil, err
		}
		s.swarm = sc
	}
	s.registerGauges(reg)
	return s, nil
}

// Counters snapshots the daemon's counters.
func (s *Server) Counters() Counters { return s.m.snapshot() }

// Metrics is the registry holding the daemon's series (the one passed in
// Config.Metrics, or the private one built in its absence) — the handle
// an exposition endpoint (obs.Handler) serves from.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// AgentStats aggregates every known device's gate counters: the
// fleet-wide requests-seen / rejected-at-gate (by cause) / MAC-work
// totals the experiments read out.
//
// The aggregate is monotonic: each device contributes its high-water base
// (the sum of every completed counter epoch — see onStats' reboot
// detection) plus its latest report. A device that reboots and reconnects
// with counters reset to zero therefore never drags a fleet total
// backwards; the pre-reboot work stays counted in the base.
func (s *Server) AgentStats() protocol.StatsReport {
	var sum protocol.StatsReport
	s.store.Range(func(d *deviceState) bool {
		// base and latest must be read under one lock acquisition: onStats
		// folds the latest report into the base on a reboot detection, and
		// reading the base before that fold but the (reset) report after it
		// would drop a whole epoch from the total — a non-monotone dip.
		d.mu.Lock()
		sum.Accumulate(&d.statsBase)
		if st := d.lastStats.Load(); st != nil {
			sum.Accumulate(st)
		}
		d.mu.Unlock()
		return true
	})
	return sum
}

// Devices reports how many provers this daemon currently holds state for
// — in cluster mode, the devices it owns (handed-off devices leave the
// count).
func (s *Server) Devices() int { return s.store.Len() }

// Inflight reports the current number of outstanding requests.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// errDeviceTableFull refuses a hello that would grow the device table
// past Config.MaxDevices. Static so the refusal path never allocates
// under an ID-inventing flood.
var errDeviceTableFull = errors.New("server: device table full")

// device returns the per-prover state, creating it (and its verifier) on
// first contact. Construction — key derivation, authenticator setup and a
// verifier holding its own golden-image copy — happens *outside* the
// shard lock: it is the expensive part of a cold start, and holding the
// stripe mutex through it would let a burst of unknown IDs stall every
// established device on the same shard. The lock then covers only a
// re-check (first insert wins; a racing construction is discarded) and
// the capped insert.
func (s *Server) device(deviceID string) (*deviceState, error) {
	if d, ok := s.store.Get(deviceID); ok {
		return d, nil
	}

	key := protocol.DeriveDeviceKey(s.cfg.MasterSecret, deviceID)
	auth, err := newAuthenticator(s.cfg.Auth, key[:], s.cfg.ECDSAKey)
	if err != nil {
		return nil, err
	}
	v, err := protocol.NewVerifier(protocol.VerifierConfig{
		Freshness:     s.cfg.Freshness,
		Auth:          auth,
		AttestKey:     key[:],
		Golden:        s.cfg.Golden,
		AllowFastPath: s.cfg.FastPath,
	})
	if err != nil {
		return nil, err
	}
	d := &deviceState{id: deviceID, v: v, kick: make(chan struct{}, 1)}

	// Cluster mode: first contact on this daemon is usually a device
	// whose previous owner still holds (or replicated) its freshness
	// state. Adopt it before publication so the device's counter stream
	// continues instead of restarting — the freshness-survival invariant.
	handoff := s.adoptClusterState(d, deviceID)

	// Standalone restart: the same invariant, sourced from the journal. A
	// cluster peer's state is fresher than disk (it kept serving while
	// this daemon was down), so disk only fills in when no peer did.
	recoveredExact, recovered := false, false
	if handoff == handoffNone && s.persist != nil {
		if snap, exact, ok := s.persist.TakeRecovered(deviceID); ok {
			d.importSnapshot(snap)
			recoveredExact, recovered = exact, true
		}
	}

	// Reserve-then-check keeps the cap exact: two inserts racing on
	// different devices both Add before either could Load.
	if s.deviceCount.Add(1) > int64(s.cfg.MaxDevices) {
		s.deviceCount.Add(-1)
		return nil, errDeviceTableFull
	}
	if cur, inserted := s.store.Put(deviceID, d); !inserted {
		// Lost the creation race; the winner's state carries the device's
		// nonce/counter stream, so it must be the one everyone uses.
		s.deviceCount.Add(-1)
		return cur, nil
	}
	// Tier placement by ID rules (the hello path re-resolves with the
	// advertised class, which only matters when no ID rule claims it).
	d.setTier(s.tiers.resolve(deviceID, 0))
	switch handoff {
	case handoffLive:
		s.m.handoffsLive.Inc()
	case handoffReplica:
		s.m.handoffsReplica.Inc()
	}
	if recovered {
		if recoveredExact {
			s.m.recoveredExact.Inc()
		} else {
			s.m.recoveredJumped.Inc()
		}
	}
	return d, nil
}

// newAuthenticator builds the request signer for one device, mirroring the
// prover-side keying: symmetric schemes key themselves from the device's
// K_Attest, ECDSA uses the daemon's signing identity.
func newAuthenticator(kind protocol.AuthKind, key []byte, ecdsaKey *ecc.PrivateKey) (protocol.Authenticator, error) {
	switch kind {
	case protocol.AuthNone:
		return protocol.NoAuth{}, nil
	case protocol.AuthHMACSHA1:
		return protocol.NewHMACAuth(key), nil
	case protocol.AuthECDSA:
		return protocol.NewECDSAAuth(ecdsaKey), nil
	default:
		return protocol.NewAuthenticator(kind, key[:16])
	}
}

// ListenAndServe listens on a TCP address and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections until the listener fails hard or Close (or
// Shutdown) is called. Transient accept failures — fd exhaustion, an
// injected fault from a chaos harness, anything reporting
// Temporary() == true — are survived with a short escalating pause
// instead of killing the daemon's only accept loop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	const maxAcceptPause = time.Second
	acceptPause := 5 * time.Millisecond
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || s.draining.Load() {
				return nil
			}
			var te interface{ Temporary() bool }
			if errors.As(err, &te) && te.Temporary() {
				s.m.acceptRetries.Inc()
				time.Sleep(acceptPause)
				if acceptPause *= 2; acceptPause > maxAcceptPause {
					acceptPause = maxAcceptPause
				}
				continue
			}
			return err
		}
		acceptPause = 5 * time.Millisecond
		s.mu.Lock()
		if s.closed || s.draining.Load() {
			s.mu.Unlock()
			s.m.connRejDraining.Inc()
			nc.Close()
			continue
		}
		if len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.m.connRejCap.Inc()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(nc)
	}
}

// Addr reports the bound listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Healthy is the liveness probe (/healthz): true as long as the process
// can answer at all — including while draining, on purpose. Liveness
// restarting a daemon mid-drain would turn every rollout into a crash.
func (s *Server) Healthy() bool { return true }

// Ready is the readiness probe (/readyz): whether a load balancer should
// route new connections here. False while draining (Shutdown's refusal
// contract), after Close, before a listener is bound, and — in cluster
// mode — while the shared membership view marks this node down (peers
// would redirect its devices elsewhere, so feeding it traffic only adds
// a hop). The reason string is what the probe body reports.
func (s *Server) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	s.mu.Lock()
	ln, closed := s.ln, s.closed
	s.mu.Unlock()
	if closed {
		return false, "closed"
	}
	if ln == nil {
		return false, "no listener bound"
	}
	if s.cl != nil {
		self := s.cl.Self().Name
		alive := false
		for _, mem := range s.cl.Membership().Alive() {
			if mem.Name == self {
				alive = true
				break
			}
		}
		if !alive {
			return false, "cluster membership marks this node down"
		}
	}
	return true, ""
}

// Shutdown drains the daemon gracefully: it stops accepting connections,
// stops issuing new attestation requests, waits for every outstanding
// request to resolve (a verdict arrives or the request times out and is
// abandoned), then closes the remaining connections and returns. The
// wait is bounded by ctx; on expiry the daemon is closed anyway and
// ctx's error is returned, with however many verdicts were still
// pending simply dropped.
//
// Established connections stay up during the drain on purpose — they
// are the pipes the pending verdicts arrive on. Only once the inflight
// count reaches zero (or ctx expires) are they closed.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		s.m.draining.Set(1)
		close(s.drainCh)
	}
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close() // stop accepting; Serve returns nil (draining)
	}

	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for s.Inflight() > 0 {
		select {
		case <-ctx.Done():
			s.Close()
			s.m.draining.Set(0)
			return ctx.Err()
		case <-ticker.C:
		}
	}
	err := s.Close()
	s.m.draining.Set(0)
	return err
}

// Close stops the listener, closes every connection and waits for the
// connection handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) dropConn(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	nc.Close()
	s.wg.Done()
}

// HandleConn serves one established connection synchronously — the entry
// point for tests and in-process loopbacks (net.Pipe) that bypass the
// listener. The connection counts toward no accept-side limits.
func (s *Server) HandleConn(nc net.Conn) {
	s.mu.Lock()
	s.conns[nc] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	s.handleConn(nc)
}

func (s *Server) handleConn(nc net.Conn) {
	defer s.dropConn(nc)
	s.handleConnInner(nc)
}

func (s *Server) handleConnInner(nc net.Conn) {
	// The first frame gets the short hello deadline; only after the peer
	// has proven it speaks the protocol does the connection earn the
	// steady-state ReadTimeout.
	tc := transport.NewConn(nc, transport.Options{
		MaxFrame:     s.cfg.MaxFrame,
		ReadTimeout:  s.cfg.HelloTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
		Metrics:      s.m.transport,
	})

	// The first frame must be a policy-matching hello. Each refusal cause
	// is its own series: a scrape can tell a misprovisioned fleet (policy
	// mismatches) from a port scanner (malformed hellos) from a
	// slow-loris (hello timeouts).
	frame, err := tc.Recv()
	if err != nil {
		if transport.IsTimeout(err) {
			s.m.connRejHelloSlow.Inc()
		} else {
			s.m.connRejIO.Inc()
		}
		return
	}
	tc.SetReadTimeout(s.cfg.ReadTimeout)
	// A peer daemon opens its link with a cluster peer hello instead of a
	// device hello; the connection then speaks the state-transfer
	// protocol, never the attestation one.
	if s.cl != nil && cluster.IsPeerHello(frame) {
		s.servePeer(tc, frame)
		return
	}
	hello, err := protocol.DecodeHello(frame)
	if err != nil {
		s.m.connRejHello.Inc()
		return
	}
	if hello.Freshness != s.cfg.Freshness || hello.Auth != s.cfg.Auth {
		s.m.connRejPolicy.Inc()
		return
	}
	// Cluster mode: serve only owned devices. A non-owner answers the
	// hello with a redirect naming the owner and closes — the redirect
	// contract in PROTOCOL.md — so device state never splits across
	// daemons.
	if s.cl != nil {
		if owner, redirect := s.cl.Route(hello.DeviceID); redirect {
			_ = tc.Send(cluster.EncodeRedirect(owner.Name, owner.Addr))
			s.m.redirects.Inc()
			return
		}
	}
	dev, err := s.device(hello.DeviceID)
	if err != nil {
		if errors.Is(err, errDeviceTableFull) {
			s.m.connRejDeviceFull.Inc()
		} else {
			s.m.connRejDeviceNew.Inc()
		}
		return
	}
	s.m.connsAccepted.Inc()

	stop := make(chan struct{})
	defer close(stop)
	// The issue/flood goroutine is wg-tracked so Close/Shutdown do not
	// return while one is mid-send. The Add races no Wait: it happens
	// under the handler's own wg slot, which Close is still waiting on.
	s.wg.Add(1)
	if s.cfg.Flood != nil {
		go func() { defer s.wg.Done(); s.floodLoop(dev, tc, stop) }()
	} else {
		go func() { defer s.wg.Done(); s.issueLoop(dev, tc, stop) }()
	}
	// The gateway device's connection additionally carries the swarm
	// aggregation schedule: the whole fleet's collective evidence flows
	// through this one socket.
	if sc := s.swarm; sc != nil && hello.DeviceID == sc.gateway {
		s.wg.Add(1)
		go func() { defer s.wg.Done(); s.swarmLoop(tc, stop) }()
	}

	// Re-resolve the tier with the hello's advertised class (server-side
	// ID rules still win inside resolve) and draw this connection's
	// budget from it — tier placement happens once per session, never on
	// the per-frame path.
	dev.setTier(s.tiers.resolve(hello.DeviceID, hello.Tier))
	bucket := dev.tier.Load().connBucketAt(nil)
	for {
		// RecvShared reuses the connection's frame buffer: every handler
		// below either decodes into value types or copies what it keeps, so
		// nothing aliases the buffer past handleFrame's return.
		frame, err := tc.RecvShared()
		if err != nil {
			// A deadline expiry here means the peer completed no frame for
			// a whole ReadTimeout: the post-hello slow-loris. The return
			// evicts it (dropConn closes the socket).
			if transport.IsTimeout(err) {
				s.m.evictReadStall.Inc()
			}
			return
		}
		s.handleFrame(dev, bucket, frame)
	}
}

// handleFrame is the per-frame serving path: rate gate, classify,
// dispatch. It must stay allocation-free for frames that die at the gate
// (rate-limited, unknown, unsolicited) — a hostile peer chooses how often
// those branches run, and both the counters and the gate-latency
// histogram record with atomics only. frame is only valid for the
// duration of the call.
func (s *Server) handleFrame(dev *deviceState, bucket *tokenBucket, frame []byte) {
	t0 := time.Now()
	s.m.framesIn.Inc()
	if bucket != nil && !bucket.allow() {
		s.m.rejRateLimited.Inc()
		s.m.gateLat.Observe(time.Since(t0))
		return
	}
	// Tier-wide budget after the per-connection one: a single hostile
	// connection dies at its own bucket before it can drain the budget
	// its whole class shares.
	tr := dev.tier.Load()
	if tr != nil && !tr.allow() {
		tr.limited.Add(1)
		s.m.rejTierLimited.Inc()
		s.m.gateLat.Observe(time.Since(t0))
		return
	}
	if s.dBucket != nil && !s.dBucket.allow() {
		s.m.rejDaemonRate.Inc()
		s.m.gateLat.Observe(time.Since(t0))
		return
	}
	if tr != nil {
		tr.admitted.Inc()
	}
	switch protocol.ClassifyFrame(frame) {
	case protocol.FrameAttResp:
		s.onAttResp(dev, frame, t0)
	case protocol.FrameCommandResp:
		s.onCommandResp(dev, frame, t0)
	case protocol.FrameStats:
		s.onStats(dev, frame, t0)
	case protocol.FrameSwarmResp:
		s.onSwarmResp(dev, frame, t0)
	default:
		s.m.rejUnknown.Inc()
		s.m.gateLat.Observe(time.Since(t0))
	}
}

func (s *Server) onAttResp(dev *deviceState, frame []byte, t0 time.Time) {
	// Decode outside the shard lock (into a stack value, no allocation);
	// the lock then covers only the pending-map lookup, the memoized
	// measurement compare and the retire. No closure: this path runs once
	// per inbound response frame, hostile or not.
	var resp protocol.AttResp
	if err := protocol.DecodeAttRespInto(frame, &resp); err != nil {
		s.m.rejMalformedResp.Inc()
		s.m.gateLat.Observe(time.Since(t0))
		return
	}
	mu := &dev.mu
	mu.Lock()
	u0 := dev.v.Unsolicited
	f0 := dev.v.FastAccepted
	fr0 := dev.v.FastRejected
	ok, _ := dev.v.CheckDecodedResponse(&resp)
	unsol := dev.v.Unsolicited > u0
	fastOK := dev.v.FastAccepted > f0
	fastRej := dev.v.FastRejected > fr0
	mu.Unlock()
	switch {
	case ok:
		s.m.responsesAccepted.Inc()
		if fastOK {
			s.m.responsesFast.Inc()
		}
		if issued := dev.issuedAtNs.Load(); issued > 0 {
			s.m.attestLat.Observe(time.Duration(time.Now().UnixNano() - issued))
		}
		if !fastOK {
			// An accepted *full* measurement may have re-armed the fast
			// record; replicate so a failover successor knows it too, and
			// journal it so a restarted daemon re-arms instead of demanding
			// a spurious full MAC.
			if s.cl != nil {
				s.cl.Replicate(dev.id)
			}
			if s.persist != nil {
				s.persist.MarkDirty(dev.id)
			}
		}
		s.releaseInflight()
	case unsol:
		s.m.rejUnsolicited.Inc()
		s.m.gateLat.Observe(time.Since(t0))
	case fastRej:
		// A fast response that failed the digest/epoch record check. The
		// verifier has dropped its fast state, so the device's next
		// request demands — and its deviation is caught by — the full MAC.
		s.m.rejFastMismatch.Inc()
		s.m.gateLat.Observe(time.Since(t0))
	default:
		s.m.rejBadMeasurement.Inc()
		s.m.gateLat.Observe(time.Since(t0))
	}
}

func (s *Server) onCommandResp(dev *deviceState, frame []byte, t0 time.Time) {
	var (
		err   error
		unsol bool
	)
	dev.withLock(func() {
		u0 := dev.v.Unsolicited
		_, err = dev.v.CheckCommandResponse(frame)
		unsol = dev.v.Unsolicited > u0
	})
	switch {
	case err == nil:
		s.m.responsesAccepted.Inc()
		s.releaseInflight()
	case unsol:
		s.m.rejUnsolicited.Inc()
		s.m.gateLat.Observe(time.Since(t0))
	default:
		s.m.rejCommand.Inc()
		s.m.gateLat.Observe(time.Since(t0))
	}
}

func (s *Server) onStats(dev *deviceState, frame []byte, t0 time.Time) {
	// Decode into a stack value first: the retained snapshot below forces
	// its pointee to the heap, and paying that allocation before validation
	// would hand hostile malformed-stats floods a per-frame allocation.
	var tmp protocol.StatsReport
	if err := protocol.DecodeStatsReportInto(frame, &tmp); err != nil {
		// A frame that classified as stats but fails strict decode is a
		// malformed frame, not an unknown kind — distinct cause, distinct
		// series.
		s.m.rejMalformedStats.Inc()
		s.m.gateLat.Observe(time.Since(t0))
		return
	}
	st := new(protocol.StatsReport)
	*st = tmp
	s.m.statsReports.Inc()
	dev.mu.Lock()
	if prev := dev.lastStats.Load(); prev != nil && st.Regressed(prev) {
		// The device's cumulative counters went backwards: it rebooted and
		// restarted from zero. Fold the dying epoch's final snapshot into
		// the high-water base so fleet aggregates stay monotonic.
		dev.statsBase.Accumulate(prev)
		dev.statsEpochs++
		s.m.statsEpochs.Inc()
	}
	dev.lastStats.Store(st)
	dev.mu.Unlock()
	if s.persist != nil {
		// Stats ride the same snapshot records as freshness state; keeping
		// them journaled keeps fleet aggregates monotone across restarts.
		s.persist.MarkDirty(dev.id)
	}
}

func (s *Server) acquireInflight() bool {
	if s.inflight.Add(1) > int64(s.cfg.MaxInflight) {
		s.inflight.Add(-1)
		return false
	}
	return true
}

func (s *Server) releaseInflight() { s.inflight.Add(-1) }

// issueOne signs and sends the next request for dev, arming the
// abandon-on-timeout. It reports false when the connection is dead.
func (s *Server) issueOne(dev *deviceState, tc *transport.Conn) bool {
	if s.draining.Load() {
		return true // draining: commit to no new verdicts
	}
	if !s.acquireInflight() {
		s.m.inflightThrottled.Inc()
		return true // cap pressure is not a connection failure
	}
	var (
		raw   []byte
		nonce uint64
		err   error
		gone  bool
	)
	dev.withLock(func() {
		if dev.handedOff {
			// A peer daemon took this device's freshness state; issuing
			// here would consume counters the new owner also issues. The
			// false return tears the session down and the device redials
			// its way to the owner.
			gone = true
			return
		}
		var req *protocol.AttReq
		req, err = dev.v.NewRequest()
		if err == nil {
			raw = req.Encode()
			nonce = req.Nonce
		}
	})
	if gone {
		s.releaseInflight()
		return false
	}
	if err == nil {
		// The encoded frame is immutable from here on (Send copies into its
		// own scratch), so the replay source can share it lock-free.
		dev.lastReq.Store(&raw)
	}
	if err != nil {
		s.releaseInflight()
		return true
	}
	if s.persist != nil {
		// Make the consumed counter durable before it can reach the wire:
		// under fsync=always this blocks on the journal fsync (the
		// write-ahead barrier behind exact restart adoption), under lazier
		// policies it is a coalescing dirty mark.
		s.persist.persistIssue(dev)
	}
	if err := tc.Send(raw); err != nil {
		// The request is on no wire; abandon it immediately so the
		// verifier state does not accumulate ghosts. A deadline expiry
		// means the peer stopped draining its socket — the write-side
		// slow-loris — and the false return evicts it.
		if transport.IsTimeout(err) {
			s.m.evictWriteStall.Inc()
		}
		dev.withLock(func() { dev.v.Abandon(nonce) })
		s.releaseInflight()
		return false
	}
	s.m.requestsIssued.Inc()
	dev.issuedAtNs.Store(time.Now().UnixNano())
	if s.cl != nil {
		// The counter stream just advanced: mark the device dirty so the
		// pusher replicates a fresh snapshot to its ring successor. An
		// enqueue only — no I/O on the issue path.
		s.cl.Replicate(dev.id)
	}
	time.AfterFunc(s.cfg.RequestTimeout, func() {
		var abandoned bool
		dev.withLock(func() { abandoned = dev.v.Abandon(nonce) })
		if abandoned {
			s.m.requestsAbandoned.Inc()
			s.releaseInflight()
		}
	})
	return true
}

// issueLoop drives the honest attestation schedule for one connection.
// A failed send closes the transport so the read loop unblocks and the
// connection is torn down as one unit, not half-dead.
func (s *Server) issueLoop(dev *deviceState, tc *transport.Conn, stop <-chan struct{}) {
	ticker := time.NewTicker(s.cfg.AttestEvery)
	defer ticker.Stop()
	for {
		if !s.issueOne(dev, tc) {
			tc.Close()
			return
		}
		select {
		case <-stop:
			return
		case <-s.drainCh:
			return
		case <-dev.kick:
			// Admin force-reattest (or evict): run an immediate round
			// instead of waiting out the tick — issueOne either demands
			// the fresh full MAC now or notices the handed-off husk and
			// tears the session down.
		case <-ticker.C:
		}
	}
}

// floodLoop is the verifier impersonator: an honest head, then a cycling
// mix of forged, replayed and malformed frames. Forged frames die at the
// agent's tag check, replays at the freshness check, malformed frames at
// the parser — none of them may cost the prover a memory measurement.
func (s *Server) floodLoop(dev *deviceState, tc *transport.Conn, stop <-chan struct{}) {
	f := *s.cfg.Flood
	if f.HonestHead <= 0 {
		f.HonestHead = 1
	}
	for i := 0; i < f.HonestHead; i++ {
		if !s.issueOne(dev, tc) {
			return
		}
	}
	fams := f.families()
	var interval time.Duration
	if f.RatePerSec > 0 {
		interval = time.Duration(float64(time.Second) / f.RatePerSec)
	}
	for n := 0; f.Total == 0 || n < f.Total; n++ {
		select {
		case <-stop:
			return
		case <-s.drainCh:
			return
		default:
		}
		frame := s.floodFrame(dev, fams[n%len(fams)], n)
		if err := tc.Send(frame); err != nil {
			if transport.IsTimeout(err) {
				s.m.evictWriteStall.Inc()
			}
			tc.Close()
			return
		}
		s.m.floodInjected.Inc()
		if interval > 0 {
			select {
			case <-stop:
				return
			case <-s.drainCh:
				return
			case <-time.After(interval):
			}
		}
	}
}

func (s *Server) floodFrame(dev *deviceState, fam floodFamily, n int) []byte {
	if fam == floodReplay {
		if replay := dev.lastReq.Load(); replay != nil && len(*replay) > 0 {
			return *replay
		}
		fam = floodForge // nothing captured yet
	}
	if fam == floodMalformed {
		// A version the prover will never speak: rejected by the frame
		// parser before any cryptography runs.
		return []byte{0x41, 0x52, 0xFF, byte(n), byte(n >> 8)}
	}
	// Forged: well-framed, policy-matching request with a garbage tag and
	// a climbing counter, exactly the §3.1 impersonator. Under AuthNone
	// the empty tag verifies and the flood costs full measurements — the
	// strawman the paper's gate exists to kill.
	req := &protocol.AttReq{
		Freshness: s.cfg.Freshness,
		Auth:      s.cfg.Auth,
		Nonce:     1_000_000_007 + uint64(n),
		Counter:   1_000_000_007 + uint64(n),
	}
	if tagLen := forgedTagLen(s.cfg.Auth); tagLen > 0 {
		tag := make([]byte, tagLen)
		for j := range tag {
			tag[j] = byte(n*31 + j*7)
		}
		req.Tag = tag
	}
	return req.Encode()
}

// forgedTagLen is the tag size a key-less impersonator pads to, per scheme.
func forgedTagLen(kind protocol.AuthKind) int {
	switch kind {
	case protocol.AuthHMACSHA1:
		return 20
	case protocol.AuthAESCBCMAC:
		return 16
	case protocol.AuthSpeckCBCMAC:
		return 8
	case protocol.AuthECDSA:
		return 42
	}
	return 0
}

// tokenBucket is a wall-clock token bucket (rate tokens/s, depth burst)
// with batched refill: the clock is read only when the bucket is about to
// refuse, so a connection staying inside its burst headroom costs zero
// time.Now() calls per frame. rate <= 0 means unlimited. Not safe for
// concurrent use (each connection's read loop owns its bucket).
type tokenBucket struct {
	rate, burst float64
	tokens      float64
	last        time.Time
	now         func() time.Time // injectable clock (tests)
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

func (b *tokenBucket) allow() bool {
	if b.rate <= 0 {
		return true
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	// Out of tokens on the fast path: read the clock once and credit the
	// whole interval since the last refill. Skipped reads lose nothing —
	// the credit accrues against `last`, not against each call.
	now := b.now()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// String summarises the counters for log lines.
func (c Counters) String() string {
	return fmt.Sprintf(
		"conns=%d/%d frames=%d ratelimited=%d issued=%d accepted=%d rejected=%d (malformed=%d mismatched=%d) unsolicited=%d abandoned=%d flood=%d stats=%d epochs=%d",
		c.ConnsAccepted, c.ConnsRejected, c.FramesIn, c.RateLimited,
		c.RequestsIssued, c.ResponsesAccepted, c.ResponsesRejected,
		c.ResponsesMalformed, c.ResponsesMismatched,
		c.ResponsesUnsolicited, c.RequestsAbandoned, c.FloodInjected,
		c.StatsReports, c.StatsEpochs)
}
