package server

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"proverattest/internal/agent"
	"proverattest/internal/core"
	"proverattest/internal/obs"
	"proverattest/internal/protocol"
	"proverattest/internal/transport"
)

var testMaster = []byte("net-test-master-secret")

func testServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		Golden:       core.GoldenRAMPattern(),
		AttestEvery:  50 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func testAgent(t *testing.T, id string) *agent.Agent {
	t.Helper()
	a, err := agent.New(agent.Config{
		DeviceID:     id,
		Freshness:    protocol.FreshCounter,
		Auth:         protocol.AuthHMACSHA1,
		MasterSecret: testMaster,
		StatsEvery:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{
		Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1,
		MasterSecret: testMaster, Golden: []byte{1},
	}
	for name, mutate := range map[string]func(*Config){
		"no master secret": func(c *Config) { c.MasterSecret = nil },
		"no golden":        func(c *Config) { c.Golden = nil },
		"timestamps":       func(c *Config) { c.Freshness = protocol.FreshTimestamp },
		"ecdsa sans key":   func(c *Config) { c.Auth = protocol.AuthECDSA },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}

// TestHonestRoundsOverTCP runs the daemon and several concurrent agents
// over real TCP on localhost and waits for accepted measurements from each.
func TestHonestRoundsOverTCP(t *testing.T) {
	s := testServer(t, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const agents = 4
	var wg sync.WaitGroup
	for i := 0; i < agents; i++ {
		a := testAgent(t, fmt.Sprintf("tcp-dev-%d", i))
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Serve(ctx, nc) //nolint:errcheck
		}()
	}

	waitFor(t, 15*time.Second, "one accepted measurement per agent", func() bool {
		return s.Counters().ResponsesAccepted >= agents
	})
	waitFor(t, 15*time.Second, "gate stats from every agent", func() bool {
		return s.AgentStats().Measurements >= agents
	})
	if got := s.Devices(); got != agents {
		t.Fatalf("Devices = %d, want %d", got, agents)
	}
	c := s.Counters()
	if c.ConnsAccepted != agents || c.ResponsesRejected != 0 || c.ResponsesUnsolicited != 0 {
		t.Fatalf("counters: %v", c)
	}
	cancel()
	wg.Wait()
	if n := s.Inflight(); n < 0 {
		t.Fatalf("Inflight = %d, want >= 0", n)
	}
}

func TestHelloPolicyMismatchRejected(t *testing.T) {
	s := testServer(t, nil)
	client, peer := net.Pipe()
	go s.HandleConn(peer)
	tc := transport.NewConn(client, transport.Options{})
	defer tc.Close()

	bad := &protocol.Hello{Freshness: protocol.FreshNone, Auth: protocol.AuthNone, DeviceID: "liar"}
	if err := tc.Send(bad.Encode()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "hello rejection", func() bool {
		return s.Counters().ConnsRejected == 1
	})
	if s.Counters().ConnsAccepted != 0 || s.Devices() != 0 {
		t.Fatalf("mismatched hello created state: %v, devices=%d", s.Counters(), s.Devices())
	}
}

func TestPerConnectionRateLimit(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.PerConnRatePerSec = 5
		c.PerConnBurst = 3
	})
	client, peer := net.Pipe()
	go s.HandleConn(peer)
	tc := transport.NewConn(client, transport.Options{WriteTimeout: 2 * time.Second})
	defer tc.Close()

	hello := &protocol.Hello{Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1, DeviceID: "chatty"}
	if err := tc.Send(hello.Encode()); err != nil {
		t.Fatal(err)
	}
	// Burst far past the bucket. Junk stats frames are cheap to produce
	// and individually valid, so only the rate limiter stops them.
	junk := (&protocol.StatsReport{Received: 1}).Encode()
	for i := 0; i < 40; i++ {
		if err := tc.Send(junk); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "rate-limited frames", func() bool {
		c := s.Counters()
		return c.RateLimited > 0 && c.StatsReports > 0 && c.StatsReports <= 10
	})
}

func TestGlobalInflightCap(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.MaxInflight = 2
		c.AttestEvery = 5 * time.Millisecond
		c.RequestTimeout = time.Hour // nothing is ever abandoned in this test
	})
	client, peer := net.Pipe()
	go s.HandleConn(peer)
	tc := transport.NewConn(client, transport.Options{ReadTimeout: time.Second})
	defer tc.Close()

	hello := &protocol.Hello{Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1, DeviceID: "mute"}
	if err := tc.Send(hello.Encode()); err != nil {
		t.Fatal(err)
	}
	// The mute prover never answers, so issuance stalls at the cap.
	go func() {
		for {
			if _, err := tc.Recv(); err != nil && !transport.IsTimeout(err) {
				return
			}
		}
	}()
	waitFor(t, 5*time.Second, "inflight throttling", func() bool {
		return s.Counters().InflightThrottled >= 3
	})
	c := s.Counters()
	if c.RequestsIssued != 2 {
		t.Fatalf("RequestsIssued = %d, want exactly MaxInflight=2", c.RequestsIssued)
	}
	if got := s.Inflight(); got != 2 {
		t.Fatalf("Inflight = %d, want 2", got)
	}
}

func TestRequestTimeoutAbandonsAndRetries(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.MaxInflight = 1
		c.AttestEvery = 10 * time.Millisecond
		c.RequestTimeout = 30 * time.Millisecond
	})
	client, peer := net.Pipe()
	go s.HandleConn(peer)
	tc := transport.NewConn(client, transport.Options{ReadTimeout: time.Second})
	defer tc.Close()

	hello := &protocol.Hello{Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1, DeviceID: "deaf"}
	if err := tc.Send(hello.Encode()); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := tc.Recv(); err != nil && !transport.IsTimeout(err) {
				return
			}
		}
	}()
	// Each abandoned request frees the single inflight slot for the next
	// round — issuance makes progress despite a dead prover.
	waitFor(t, 10*time.Second, "abandon-and-retry cycles", func() bool {
		c := s.Counters()
		return c.RequestsAbandoned >= 2 && c.RequestsIssued >= 3
	})
}

// TestFloodAsymmetry is the acceptance demo in test form: a flood of
// forged, replayed and malformed frames over the socket costs the prover
// zero memory measurements beyond the honest head.
func TestFloodAsymmetry(t *testing.T) {
	const floodTotal = 30
	s := testServer(t, func(c *Config) {
		c.Flood = &FloodConfig{Total: floodTotal, HonestHead: 1}
	})
	client, peer := net.Pipe()
	go s.HandleConn(peer)

	a := testAgent(t, "flooded-dev")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.Serve(ctx, client) //nolint:errcheck
	}()

	waitFor(t, 20*time.Second, "all flood frames processed and reported", func() bool {
		return s.AgentStats().Received >= floodTotal+1
	})
	st := s.AgentStats()
	c := s.Counters()
	if c.FloodInjected != floodTotal {
		t.Fatalf("FloodInjected = %d, want %d", c.FloodInjected, floodTotal)
	}
	if st.Measurements != 1 {
		t.Fatalf("Measurements = %d, want 1 — flood frames bought MAC work", st.Measurements)
	}
	if st.GateRejected() != floodTotal {
		t.Fatalf("GateRejected = %d, want %d", st.GateRejected(), floodTotal)
	}
	// Each family dies at its own gate stage: forgeries at the tag check,
	// replays at the freshness check, malformed frames at the parser.
	if st.AuthRejected != floodTotal/3 || st.FreshnessRejected != floodTotal/3 || st.Malformed != floodTotal/3 {
		t.Fatalf("cause split = auth %d / fresh %d / malformed %d, want %d each",
			st.AuthRejected, st.FreshnessRejected, st.Malformed, floodTotal/3)
	}
	if c.ResponsesAccepted != 1 {
		t.Fatalf("ResponsesAccepted = %d, want 1 (the honest head)", c.ResponsesAccepted)
	}
	cancel()
	<-done
}

// TestDeviceCreationRaceSingleInsert: concurrent first contacts for one
// identity must all end up on the same deviceState. Construction happens
// outside the shard lock, so several goroutines can build verifiers in
// parallel — but only the first insert may win, or the losers' verifiers
// would fork the device's nonce/counter stream.
func TestDeviceCreationRaceSingleInsert(t *testing.T) {
	s := testServer(t, nil)
	const callers = 16
	devs := make([]*deviceState, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			d, err := s.device("race-dev")
			if err != nil {
				t.Error(err)
				return
			}
			devs[i] = d
		}()
	}
	close(start)
	wg.Wait()
	for i := 1; i < callers; i++ {
		if devs[i] != devs[0] {
			t.Fatal("racing device() calls returned distinct states")
		}
	}
	if s.Devices() != 1 {
		t.Fatalf("Devices = %d after race, want 1", s.Devices())
	}
	// The losers found the winner under the lock and never reserved, so the
	// cap accounting must still be exact.
	if n := s.deviceCount.Load(); n != 1 {
		t.Fatalf("deviceCount = %d after race, want 1", n)
	}
}

// TestDeviceTableCap: identities past Config.MaxDevices are refused at
// the hello — an ID-inventing flood cannot grow daemon memory without
// bound — while known devices keep reconnecting, and the refusal is its
// own conns_rejected cause.
func TestDeviceTableCap(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.MaxDevices = 2
		c.Metrics = obs.New()
	})
	hello := func(id string) {
		client, peer := net.Pipe()
		go s.HandleConn(peer)
		tc := transport.NewConn(client, transport.Options{})
		t.Cleanup(func() { tc.Close() })
		h := &protocol.Hello{Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1, DeviceID: id}
		if err := tc.Send(h.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	hello("cap-dev-0")
	hello("cap-dev-1")
	waitFor(t, 5*time.Second, "both identities admitted", func() bool { return s.Devices() == 2 })

	hello("cap-dev-2")
	waitFor(t, 5*time.Second, "the third identity to be refused", func() bool {
		return s.Counters().DeviceTableFull == 1
	})
	if got := s.Devices(); got != 2 {
		t.Fatalf("Devices = %d after refusal, want 2", got)
	}
	if c := s.Counters(); c.ConnsRejected < c.DeviceTableFull {
		t.Fatalf("ConnsRejected = %d does not include DeviceTableFull = %d", c.ConnsRejected, c.DeviceTableFull)
	}

	// A known identity still gets in at the cap: the refusal is about new
	// table entries, not connections.
	hello("cap-dev-0")
	waitFor(t, 5*time.Second, "reconnect of a known device", func() bool {
		return s.Counters().ConnsAccepted >= 3
	})

	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	series := parsePromText(t, sb.String())
	if got := series[`attestd_conns_rejected_total{cause="device_table_full"}`]; got != 1 {
		t.Fatalf(`conns_rejected{cause="device_table_full"} = %v, want 1`, got)
	}
}

func TestCloseUnblocksServe(t *testing.T) {
	s := testServer(t, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	waitFor(t, 5*time.Second, "listener bound", func() bool { return s.Addr() != nil })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve after Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if err := s.Serve(ln); err != ErrClosed {
		t.Fatalf("Serve on closed server: %v, want ErrClosed", err)
	}
}
