package server

import (
	"net"
	"testing"
	"time"

	"proverattest/internal/protocol"
	"proverattest/internal/transport"
)

// statsFrame builds an encoded agent stats report.
func statsFrame(received, measured, framesIn uint64) []byte {
	return (&protocol.StatsReport{
		Received:     received,
		Measurements: measured,
		FramesIn:     framesIn,
	}).Encode()
}

// TestAgentStatsMonotonicAcrossReboot is the regression test for the
// fleet-aggregation bug: AgentStats used to sum each device's *latest*
// report, so a device that rebooted (cumulative counters reset to zero)
// made fleet-wide totals jump backwards. The fix keeps a per-device
// high-water base that absorbs each dying counter epoch.
func TestAgentStatsMonotonicAcrossReboot(t *testing.T) {
	s, dev := newAllocRig(t)
	now := time.Now()

	// First epoch: the device has done real work.
	s.onStats(dev, statsFrame(100, 10, 120), now)
	before := s.AgentStats()
	if before.Received != 100 || before.Measurements != 10 {
		t.Fatalf("first epoch aggregate = %+v", before)
	}

	// Reboot: the device reconnects reporting from-zero counters.
	s.onStats(dev, statsFrame(3, 1, 4), now)
	after := s.AgentStats()
	if after.Received < before.Received || after.Measurements < before.Measurements ||
		after.FramesIn < before.FramesIn {
		t.Fatalf("fleet aggregate regressed across reboot: before %+v, after %+v", before, after)
	}
	if after.Received != 103 || after.Measurements != 11 || after.FramesIn != 124 {
		t.Fatalf("aggregate = %+v, want pre-reboot base + new epoch (103/11/124)", after)
	}
	if got := s.Counters().StatsEpochs; got != 1 {
		t.Fatalf("StatsEpochs = %d, want 1 reboot detected", got)
	}

	// The new epoch keeps counting on top of the preserved base.
	s.onStats(dev, statsFrame(50, 5, 60), now)
	final := s.AgentStats()
	if final.Received != 150 || final.Measurements != 15 {
		t.Fatalf("aggregate after second epoch grew wrong: %+v", final)
	}
	if got := s.Counters().StatsEpochs; got != 1 {
		t.Fatalf("StatsEpochs = %d, want still 1 (monotonic growth is not a reboot)", got)
	}
}

// TestAgentStatsEqualReportIsNotAReboot pins the detection edge: a
// heartbeat identical to the previous one (an idle prover) must not be
// mistaken for a counter reset.
func TestAgentStatsEqualReportIsNotAReboot(t *testing.T) {
	s, dev := newAllocRig(t)
	now := time.Now()
	s.onStats(dev, statsFrame(7, 2, 9), now)
	s.onStats(dev, statsFrame(7, 2, 9), now)
	if got := s.Counters().StatsEpochs; got != 0 {
		t.Fatalf("StatsEpochs = %d, want 0 for an idle heartbeat", got)
	}
	if st := s.AgentStats(); st.Received != 7 {
		t.Fatalf("aggregate double-counted an idle heartbeat: %+v", st)
	}
}

// TestAgentStatsMultiDeviceReboot checks the base is per-device: one
// device rebooting neither disturbs another's contribution nor the
// fleet's monotonicity.
func TestAgentStatsMultiDeviceReboot(t *testing.T) {
	s, _ := newAllocRig(t)
	now := time.Now()
	devA, err := s.device("dev-a")
	if err != nil {
		t.Fatal(err)
	}
	devB, err := s.device("dev-b")
	if err != nil {
		t.Fatal(err)
	}
	s.onStats(devA, statsFrame(40, 4, 44), now)
	s.onStats(devB, statsFrame(60, 6, 66), now)
	before := s.AgentStats()
	if before.Received != 100 {
		t.Fatalf("two-device aggregate = %+v", before)
	}
	s.onStats(devA, statsFrame(1, 0, 1), now) // A reboots
	after := s.AgentStats()
	if after.Received != 101 || after.Measurements != 10 {
		t.Fatalf("aggregate after A's reboot = %+v, want 101 received / 10 measured", after)
	}
	if after.Received < before.Received {
		t.Fatalf("fleet aggregate regressed: %d -> %d", before.Received, after.Received)
	}
}

// TestStatsReconnectLowerCountersOverConn replays the reboot scenario
// through the real connection path: the same device identity reconnects
// and reports lower counters over a fresh socket, and the exported
// aggregate must not move backwards.
func TestStatsReconnectLowerCountersOverConn(t *testing.T) {
	s := testServer(t, nil)
	session := func(received, measured uint64) {
		base := s.Counters().StatsReports
		clientNC, peer := net.Pipe()
		client := transport.NewConn(clientNC, transport.Options{WriteTimeout: 2 * time.Second})
		go s.HandleConn(peer)
		hello := &protocol.Hello{Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1, DeviceID: "rebooter"}
		if err := client.Send(hello.Encode()); err != nil {
			t.Fatal(err)
		}
		if err := client.Send(statsFrame(received, measured, received)); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, "stats frame processed", func() bool {
			return s.Counters().StatsReports >= base+1
		})
		client.Close()
	}

	session(500, 50)
	waitFor(t, 5*time.Second, "first session aggregated", func() bool {
		return s.AgentStats().Received == 500
	})
	before := s.AgentStats()

	session(2, 1) // rebooted: counters restarted
	waitFor(t, 5*time.Second, "reboot folded into the base", func() bool {
		return s.Counters().StatsEpochs == 1
	})
	after := s.AgentStats()
	if after.Received < before.Received || after.Measurements < before.Measurements {
		t.Fatalf("aggregate regressed on reconnect: before %+v, after %+v", before, after)
	}
	if after.Received != 502 || after.Measurements != 51 {
		t.Fatalf("aggregate = %+v, want 502 received / 51 measured", after)
	}
}
