package server

import (
	"sync"
)

// VerifierStore is the pluggable backend holding per-device verifier
// state. The daemon routes every lookup, insert and removal through this
// interface; the default implementation (NewShardedStore) is the striped
// in-memory map the daemon has always used, and cluster mode's state
// handoff is built on Remove returning the evicted entry.
//
// Contract:
//   - Get/Put/Remove are linearizable per device ID; Put is
//     first-insert-wins (a losing racer receives the winner, inserted ==
//     false) because the winner's entry carries the device's live
//     nonce/counter stream.
//   - The store guards only its own map structure. Each deviceState
//     carries its own mutex for verifier operations, so a store
//     implementation adds nothing to the per-frame serving path — the
//     0-alloc gate-reject pins in alloc_test.go hold over any store.
//   - Range visits entries without internal locks held and tolerates
//     concurrent mutation (entries inserted during a sweep may or may not
//     be visited).
//
// Entries are package-private (a *deviceState embeds the verifier and its
// golden-image copy), so implementations currently live in this package;
// the interface is the seam a persistent or remote backend would slot
// into.
type VerifierStore interface {
	// Get returns the entry for deviceID, if present.
	Get(deviceID string) (*deviceState, bool)
	// Put inserts dev if deviceID is absent. It returns the entry now in
	// the store and whether the insert happened; on inserted == false the
	// returned entry is the incumbent and dev must be discarded.
	Put(deviceID string, dev *deviceState) (entry *deviceState, inserted bool)
	// Remove deletes and returns the entry, if present — the handoff
	// primitive: the caller owns the returned entry's final snapshot.
	Remove(deviceID string) (*deviceState, bool)
	// Range calls fn for each entry until fn returns false.
	Range(fn func(*deviceState) bool)
	// Len reports the number of entries.
	Len() int
}

// storeShard is one stripe of the sharded store: a mutex and the slice of
// the device map hashed to it. The stripe mutex guards only the map;
// devices on different stripes — and verifier operations on the same
// stripe — proceed concurrently.
type storeShard struct {
	mu      sync.Mutex
	devices map[string]*deviceState
}

// shardedStore is the default VerifierStore: an FNV-striped in-memory
// map. Striping bounds insert/lookup contention under connection storms;
// per-device verifier work never touches a stripe mutex at all.
type shardedStore struct {
	shards []*storeShard
}

// NewShardedStore builds the striped in-memory store (the default when
// Config.Store is nil). stripes <= 0 uses 16.
func NewShardedStore(stripes int) VerifierStore {
	if stripes <= 0 {
		stripes = 16
	}
	st := &shardedStore{shards: make([]*storeShard, stripes)}
	for i := range st.shards {
		st.shards[i] = &storeShard{devices: make(map[string]*deviceState)}
	}
	return st
}

// shardFor hashes the device ID with FNV-1a inlined over the string (the
// internal/cluster ring does the same for its 64-bit variant): a
// hash.Hash32 plus the []byte(deviceID) conversion would cost two heap
// allocations on every Get/Put/Remove, and Get sits on the serving path
// of every frame's device lookup.
func (st *shardedStore) shardFor(deviceID string) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(deviceID); i++ {
		h ^= uint32(deviceID[i])
		h *= prime32
	}
	return st.shards[h%uint32(len(st.shards))]
}

func (st *shardedStore) Get(deviceID string) (*deviceState, bool) {
	sh := st.shardFor(deviceID)
	sh.mu.Lock()
	d, ok := sh.devices[deviceID]
	sh.mu.Unlock()
	return d, ok
}

func (st *shardedStore) Put(deviceID string, dev *deviceState) (*deviceState, bool) {
	sh := st.shardFor(deviceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.devices[deviceID]; ok {
		return cur, false
	}
	sh.devices[deviceID] = dev
	return dev, true
}

func (st *shardedStore) Remove(deviceID string) (*deviceState, bool) {
	sh := st.shardFor(deviceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d, ok := sh.devices[deviceID]
	if ok {
		delete(sh.devices, deviceID)
	}
	return d, ok
}

func (st *shardedStore) Range(fn func(*deviceState) bool) {
	for _, sh := range st.shards {
		// Snapshot the stripe under its lock, visit outside it: fn takes
		// per-device mutexes (stats reads) and must not nest them inside a
		// stripe mutex a concurrent Put needs.
		sh.mu.Lock()
		entries := make([]*deviceState, 0, len(sh.devices))
		for _, d := range sh.devices {
			entries = append(entries, d)
		}
		sh.mu.Unlock()
		for _, d := range entries {
			if !fn(d) {
				return
			}
		}
	}
}

func (st *shardedStore) Len() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		n += len(sh.devices)
		sh.mu.Unlock()
	}
	return n
}
