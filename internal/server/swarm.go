package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/swarm"
	"proverattest/internal/transport"
)

// SwarmConfig provisions the daemon as the verifier of a swarm
// (collective-attestation) deployment: instead of attesting every fleet
// member 1:1, the daemon drives aggregate rounds through the spanning
// tree's root — the "gateway" device, the only fleet member the daemon
// can reach directly. Everything below the gateway is the provers' own
// mesh: the daemon sends one SwarmReq down the gateway connection and
// reads one SwarmResp back, whatever the fleet size.
//
// Bisection probes for localization travel the same connection (they are
// SwarmReq frames addressed at inner subtree roots; the gateway's mesh
// routes them), so a failed aggregate costs O(fanout · depth) extra
// frames on the verifier leg instead of O(n).
type SwarmConfig struct {
	// IDs is the fleet member list in tree-index order; IDs[i] is member
	// i's device ID. Required, and must include the gateway.
	IDs []string
	// Fanout is the spanning-tree arity (default 2).
	Fanout int
	// Seed permutes member placement in the tree (0 = identity order).
	Seed int64
	// Every is the aggregate-round period (default 1 s).
	Every time.Duration
	// Timeout bounds one query on the gateway connection — the full
	// down-and-up traversal of the subtree (default 5 s).
	Timeout time.Duration
}

// swarmCoordinator owns the daemon side of swarm aggregation: the swarm
// verifier (expected aggregates, topology, bisection) plus the plumbing
// that matches SwarmResp frames read by the gateway connection's read
// loop to the round waiting for them.
//
// mu is held for the whole of a round — request, wait, check, localize,
// recover — so the verifier's nonce stream and topology mutate under one
// owner. The read loop never takes mu: delivery goes through the pend
// pointer (lock-free), because the round blocks on the waiter channel
// while holding mu and would deadlock any read-loop lock acquisition.
type swarmCoordinator struct {
	v       *swarm.Verifier
	gateway string
	every   time.Duration
	timeout time.Duration

	pend atomic.Pointer[swarmWaiter]

	mu       sync.Mutex
	findings []swarm.Finding
}

// swarmWaiter is one outstanding query: the round publishes it before
// sending, the read loop delivers the nonce-matching response into ch
// (buffered, non-blocking send — a duplicate loses the race and dies as
// unsolicited upstream).
type swarmWaiter struct {
	nonce uint64
	ch    chan *protocol.SwarmResp
}

func newSwarmCoordinator(cfg *Config) (*swarmCoordinator, error) {
	sw := cfg.Swarm
	if len(sw.IDs) == 0 {
		return nil, errors.New("server: swarm needs a fleet ID list")
	}
	if sw.Every <= 0 {
		sw.Every = time.Second
	}
	if sw.Timeout <= 0 {
		sw.Timeout = 5 * time.Second
	}
	v, err := swarm.NewVerifier(swarm.Params{
		Master: cfg.MasterSecret,
		IDs:    sw.IDs,
		Golden: cfg.Golden,
		Fanout: sw.Fanout,
		Seed:   sw.Seed,
	})
	if err != nil {
		return nil, err
	}
	root, ok := v.Topology().Root()
	if !ok {
		return nil, errors.New("server: swarm topology is empty")
	}
	return &swarmCoordinator{
		v:       v,
		gateway: sw.IDs[root],
		every:   sw.Every,
		timeout: sw.Timeout,
	}, nil
}

// SwarmStats snapshots the swarm verifier's round/bisection counters
// (zero value when the daemon is not swarm-provisioned). Blocks while a
// round is in flight.
func (s *Server) SwarmStats() swarm.VerifierStats {
	sc := s.swarm
	if sc == nil {
		return swarm.VerifierStats{}
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.v.Stats
}

// SwarmFindings returns the cumulative localization findings — every
// member bisection has attributed a failed aggregate to, with its cause.
func (s *Server) SwarmFindings() []swarm.Finding {
	sc := s.swarm
	if sc == nil {
		return nil
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]swarm.Finding(nil), sc.findings...)
}

// SwarmTopology snapshots the verifier's current spanning tree (nil when
// the daemon is not swarm-provisioned). The returned topology is
// immutable — quarantines replace it rather than mutating it.
func (s *Server) SwarmTopology() *core.Topology {
	sc := s.swarm
	if sc == nil {
		return nil
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.v.Topology()
}

// swarmLoop drives the aggregate-attestation schedule over the gateway
// connection: one full round immediately (the fleet just became
// reachable), then one per period. It stops with the connection.
func (s *Server) swarmLoop(tc *transport.Conn, stop <-chan struct{}) {
	sc := s.swarm
	ticker := time.NewTicker(sc.every)
	defer ticker.Stop()
	for {
		if !s.swarmRound(tc, stop) {
			tc.Close() // gateway conn failed: tear the connection down as one unit
			return
		}
		select {
		case <-stop:
			return
		case <-s.drainCh:
			return
		case <-ticker.C:
		}
	}
}

// swarmRound runs one aggregate round: request at the tree root, check
// the aggregate, and on failure bisect and apply the recovery policy.
// Reports false when the gateway connection is unusable.
func (s *Server) swarmRound(tc *transport.Conn, stop <-chan struct{}) bool {
	sc := s.swarm
	sc.mu.Lock()
	defer sc.mu.Unlock()
	root, ok := sc.v.Topology().Root()
	if !ok {
		return true // every member quarantined; nothing left to attest
	}
	s.m.swarmRounds.Inc()
	req := sc.v.NewRequest(root, false)
	resp, down := s.swarmQuery(tc, stop, req)
	if down {
		return false
	}
	var err error
	if resp == nil {
		err = errSwarmSilent
	} else {
		err = sc.v.Check(req, resp)
	}
	if err == nil {
		return true
	}
	return s.swarmLocalize(tc, stop, root)
}

// errSwarmSilent stands in for "the gateway never answered the round" on
// the localize trigger path (the verifier itself never saw a response).
var errSwarmSilent = errors.New("server: swarm round timed out")

// swarmLocalize bisects below root and applies the per-cause recovery
// policy: absent members are quarantined (removed from the tree so the
// surviving fleet keeps verifying), mismatched members get one epoch
// resync attempt — a desynced-but-clean member rejoins, a genuinely
// dirty one is quarantined — and fold forgers are quarantined outright
// (their aggregates cannot be trusted even when their own tag checks).
//
// If the gateway connection dies mid-bisection, every un-probed subtree
// looks absent; applying recovery then would quarantine the whole fleet
// on connection loss. The connErr flag discards the findings of such a
// round instead.
func (s *Server) swarmLocalize(tc *transport.Conn, stop <-chan struct{}, root int) bool {
	sc := s.swarm
	connErr := false
	findings := sc.v.Localize(root, func(req *protocol.SwarmReq) (*protocol.SwarmResp, error) {
		if connErr {
			return nil, errSwarmSilent
		}
		s.m.swarmBisections.Inc()
		resp, down := s.swarmQuery(tc, stop, req)
		if down {
			connErr = true
			return nil, errSwarmSilent
		}
		return resp, nil
	})
	if connErr {
		return false
	}
	sc.findings = append(sc.findings, findings...)
	for _, f := range findings {
		switch f.Cause {
		case swarm.CauseMismatch:
			if resynced, down := s.swarmResync(tc, stop, f.Member); down {
				return false
			} else if !resynced {
				sc.v.Remove(f.Member)
			}
		default: // CauseAbsent, CauseFoldForgery
			sc.v.Remove(f.Member)
		}
	}
	return true
}

// swarmResync is the epoch-resync contract after a localized mismatch: a
// clean member whose monitor epoch ran ahead of the verifier's record
// (extra local measurements the verifier never saw) produces own tags
// that fail at the recorded epoch but verify at a nearby one. One
// own-only probe, then a bounded scan of candidate epochs against the
// same response; the recorded epoch is restored when nothing fits — the
// member's memory genuinely deviates.
func (s *Server) swarmResync(tc *transport.Conn, stop <-chan struct{}, member int) (resynced, down bool) {
	sc := s.swarm
	req := sc.v.NewRequest(member, true)
	s.m.swarmBisections.Inc()
	resp, d := s.swarmQuery(tc, stop, req)
	if d {
		return false, true
	}
	if resp == nil {
		return false, false
	}
	base := sc.v.ExpectedEpoch(member)
	for e := base; e <= base+16; e++ {
		sc.v.SetEpoch(member, e)
		if sc.v.Check(req, resp) == nil {
			return true, false
		}
	}
	sc.v.SetEpoch(member, base)
	return false, false
}

// swarmQuery publishes the waiter, sends the request down the gateway
// connection, and waits for the read loop to deliver the matching
// response. The second return is true when the connection (or the
// daemon) is done for; a plain timeout returns (nil, false) — the
// QueryFunc contract for "no answer".
func (s *Server) swarmQuery(tc *transport.Conn, stop <-chan struct{}, req *protocol.SwarmReq) (*protocol.SwarmResp, bool) {
	sc := s.swarm
	w := &swarmWaiter{nonce: req.Nonce, ch: make(chan *protocol.SwarmResp, 1)}
	sc.pend.Store(w)
	defer sc.pend.Store(nil)
	if err := tc.Send(req.Encode()); err != nil {
		if transport.IsTimeout(err) {
			s.m.evictWriteStall.Inc()
		}
		return nil, true
	}
	timer := time.NewTimer(sc.timeout)
	defer timer.Stop()
	select {
	case resp := <-w.ch:
		return resp, false
	case <-stop:
		return nil, true
	case <-s.drainCh:
		return nil, true
	case <-timer.C:
		return nil, false
	}
}

// onSwarmResp is the read-loop side of swarmQuery: only the gateway
// connection may carry swarm evidence, a frame that fails strict decode
// is malformed whatever round state exists, and anything not answering
// the outstanding nonce is unsolicited. Runs without the coordinator
// mutex — the round blocks on the waiter channel while holding it, so
// delivery goes through the lock-free pend pointer instead.
func (s *Server) onSwarmResp(dev *deviceState, frame []byte, t0 time.Time) {
	sc := s.swarm
	if sc == nil || dev.id != sc.gateway {
		s.m.rejUnsolicited.Inc()
		s.m.gateLat.Observe(time.Since(t0))
		return
	}
	// Decode into a stack value, then copy out: the retained response
	// escapes, and its bitmap is already a copy (DecodeSwarmRespInto
	// never aliases frame, which is only valid for this call).
	var tmp protocol.SwarmResp
	if err := protocol.DecodeSwarmRespInto(frame, &tmp); err != nil {
		s.m.rejMalformedSwarm.Inc()
		s.m.gateLat.Observe(time.Since(t0))
		return
	}
	w := sc.pend.Load()
	if w == nil || tmp.Nonce != w.nonce {
		s.m.rejUnsolicited.Inc()
		s.m.gateLat.Observe(time.Since(t0))
		return
	}
	resp := new(protocol.SwarmResp)
	*resp = tmp
	select {
	case w.ch <- resp:
	default: // duplicate for this nonce: first delivery wins
	}
}
