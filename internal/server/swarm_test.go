package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"proverattest/internal/protocol"
	"proverattest/internal/swarm"
	"proverattest/internal/transport"
)

// swarmBridge connects a swarm.Mesh (the in-process device fabric) to
// the daemon through a single net.Pipe — the gateway connection. It
// sends the gateway's hello, answers every SwarmReq (full rounds and
// bisection probes alike) by running the aggregation over the mesh, and
// ignores the daemon's 1:1 traffic on the same socket.
//
// mu guards the mesh: the bridge queries it from its own goroutine while
// the test mutates adversary state (taints, absences).
type swarmBridge struct {
	mu   sync.Mutex
	mesh *swarm.Mesh
	tc   *transport.Conn
	done chan struct{}
}

func startSwarmBridge(t *testing.T, s *Server, mesh *swarm.Mesh, gatewayID string) *swarmBridge {
	t.Helper()
	clientNC, serverNC := net.Pipe()
	go s.HandleConn(serverNC)
	tc := transport.NewConn(clientNC, transport.Options{
		ReadTimeout:  100 * time.Millisecond,
		WriteTimeout: 2 * time.Second,
	})
	hello := protocol.Hello{
		Freshness: protocol.FreshCounter,
		Auth:      protocol.AuthHMACSHA1,
		DeviceID:  gatewayID,
	}
	if err := tc.Send(hello.Encode()); err != nil {
		t.Fatal(err)
	}
	b := &swarmBridge{mesh: mesh, tc: tc, done: make(chan struct{})}
	go b.run()
	t.Cleanup(func() {
		tc.Close()
		<-b.done
	})
	return b
}

func (b *swarmBridge) run() {
	defer close(b.done)
	for {
		frame, err := b.tc.Recv()
		if err != nil {
			if transport.IsTimeout(err) {
				continue
			}
			return
		}
		if protocol.ClassifyFrame(frame) != protocol.FrameSwarmReq {
			continue // 1:1 requests share the socket; the bridge is swarm-only
		}
		req, err := protocol.DecodeSwarmReq(frame)
		if err != nil {
			continue
		}
		b.mu.Lock()
		resp, err := b.mesh.Query(req)
		b.mu.Unlock()
		if err != nil || resp == nil {
			continue // absent subtree: the daemon's timeout models the silence
		}
		if err := b.tc.Send(resp.Encode()); err != nil {
			return
		}
	}
}

// with runs fn with the mesh lock held — the test's mutation window.
func (b *swarmBridge) with(fn func(m *swarm.Mesh)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fn(b.mesh)
}

func testSwarmServer(t *testing.T, n, fanout int) (*Server, *swarmBridge, []string) {
	t.Helper()
	ids := swarm.FleetIDs(n)
	s := testServer(t, func(cfg *Config) {
		// Quiet the 1:1 schedule: this deployment attests collectively.
		cfg.AttestEvery = time.Hour
		cfg.Swarm = &SwarmConfig{
			IDs:     ids,
			Fanout:  fanout,
			Every:   25 * time.Millisecond,
			Timeout: 2 * time.Second,
		}
	})
	mesh, err := swarm.NewMesh(swarm.Params{
		Master: testMaster,
		IDs:    ids,
		Golden: s.cfg.Golden,
		Fanout: fanout,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := startSwarmBridge(t, s, mesh, ids[0])
	return s, b, ids
}

func hasFinding(fs []swarm.Finding, member int, cause swarm.Cause) bool {
	for _, f := range fs {
		if f.Member == member && f.Cause == cause {
			return true
		}
	}
	return false
}

// TestServerSwarmRounds drives the full networked swarm lifecycle over
// one gateway connection: clean aggregate rounds at two frames each,
// then an epoch-desynced member (localized by bisection, resynced, kept),
// then a lost member (localized, quarantined, survivors keep verifying).
func TestServerSwarmRounds(t *testing.T) {
	const n, fanout = 15, 2
	s, b, _ := testSwarmServer(t, n, fanout)
	target := n - 1 // deepest member: the last leaf

	waitFor(t, 10*time.Second, "clean swarm rounds", func() bool {
		return s.SwarmStats().Accepted >= 2
	})
	if c := s.Counters(); c.SwarmRounds < 2 || c.SwarmBisections != 0 {
		t.Fatalf("clean phase: rounds=%d bisections=%d", c.SwarmRounds, c.SwarmBisections)
	}
	if fs := s.SwarmFindings(); len(fs) != 0 {
		t.Fatalf("clean phase produced findings: %v", fs)
	}

	// Epoch desync: the member's write monitor fires (a legitimate local
	// write), it re-measures its still-golden memory under a new epoch,
	// and its own tag stops matching the verifier's recorded epoch. The
	// daemon must localize the member and resync instead of evicting it.
	b.with(func(m *swarm.Mesh) { m.Nodes[target].Taint() })
	waitFor(t, 10*time.Second, "desync localized", func() bool {
		return hasFinding(s.SwarmFindings(), target, swarm.CauseMismatch)
	})
	if c := s.Counters(); c.SwarmBisections == 0 {
		t.Fatal("mismatch localized without bisection probes")
	}
	resynced := s.SwarmStats().Accepted
	waitFor(t, 10*time.Second, "rounds resume after resync", func() bool {
		return s.SwarmStats().Accepted > resynced
	})
	if got := s.SwarmTopology(); got != nil && got.Len() != n {
		t.Fatalf("resynced member was evicted: %d members left", got.Len())
	}

	// Member loss: the leaf goes dark. Its presence bit clears, the
	// verifier localizes the absence and quarantines the member, and the
	// surviving fleet's aggregate verifies again.
	b.with(func(m *swarm.Mesh) { m.Absent[target] = true })
	waitFor(t, 10*time.Second, "absence localized", func() bool {
		return hasFinding(s.SwarmFindings(), target, swarm.CauseAbsent)
	})
	recovered := s.SwarmStats().Accepted
	waitFor(t, 10*time.Second, "rounds resume after quarantine", func() bool {
		return s.SwarmStats().Accepted > recovered
	})
	if got := s.SwarmTopology(); got == nil || got.Len() != n-1 {
		t.Fatalf("quarantine did not shrink the tree: %v", got)
	}
}

// TestServerSwarmMalformedResp: swarm responses share the serving gate
// with everything else — a garbage frame with the right magic dies at
// strict decode under its own reject cause, and a stale (wrong-nonce)
// response dies as unsolicited.
func TestServerSwarmMalformedResp(t *testing.T) {
	s, b, _ := testSwarmServer(t, 3, 2)
	waitFor(t, 10*time.Second, "a clean round", func() bool {
		return s.SwarmStats().Accepted >= 1
	})
	// Malformed: swarm-resp magic, truncated body.
	if err := b.tc.Send([]byte{0x41, 0x56, 0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "malformed swarm frame counted", func() bool {
		return s.Counters().MalformedFrames >= 1
	})
	// Stale nonce: a well-formed response answering no outstanding query.
	stale := &protocol.SwarmResp{Nonce: 1, Root: 0, Bitmap: []byte{0x07}}
	if err := b.tc.Send(stale.Encode()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "stale swarm response rejected", func() bool {
		return s.Counters().ResponsesUnsolicited >= 1
	})
}
