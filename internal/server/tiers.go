package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"proverattest/internal/obs"
)

// This file is the daemon's tiered admission layer: the generalisation of
// the single flat per-connection rate limit into per-device-class QoS.
// The paper's §3.1 asymmetry argument is ultimately about availability —
// keep serving honest traffic while an adversary floods — and at fleet
// scale the flood and the honest traffic belong to *different device
// classes*. A tier gives each class its own admission budget (a shared
// tier-wide token bucket plus per-connection buckets, both the batched
// lazy-refill bucket from the flat limiter), so a flooding class exhausts
// its own tokens and dies at the cheap gate without touching another
// class's budget. The tier-isolation loadgen drill (cmd/attest-loadgen
// -tier-isolation) is the proof, CI-gated in BENCH_server.json.
//
// Tier resolution order (PROTOCOL.md "Admission tiers"):
//
//  1. server-side device-ID prefix rules (TierSpec.Match) — longest
//     match wins; operator configuration is authoritative,
//  2. the hello's advertised tier class (Hello.Tier) when some tier
//     declares that class — an unauthenticated hint, honoured only when
//     no ID rule matched,
//  3. the policy's default tier.

// TierSpec declares one admission tier of a TierPolicy.
type TierSpec struct {
	// Name labels the tier's metric series
	// (attestd_tier_admitted_total{tier="..."}) and the admin API;
	// required, unique within the policy.
	Name string
	// Class is the hello-advertised tier class that selects this tier
	// (0 = this tier cannot be selected by advertisement).
	Class uint8
	// Match routes device IDs with any of these prefixes into this tier,
	// regardless of what the hello advertised. The longest matching
	// prefix across the whole policy wins.
	Match []string
	// RatePerSec is the tier-wide inbound-frame budget shared by every
	// connection in the tier (0 = unlimited). Over-budget frames die at
	// the gate as rejects{cause="tier_limited"}.
	RatePerSec float64
	// Burst is the tier bucket depth (default max(64, RatePerSec)).
	Burst float64
	// PerConnRatePerSec is each connection's budget within the tier
	// (0 = unlimited), the old flat limit made per-class.
	PerConnRatePerSec float64
	// PerConnBurst is the per-connection bucket depth
	// (default max(16, PerConnRatePerSec)).
	PerConnBurst float64
}

// TierPolicy maps device classes to admission tiers. The zero policy is
// invalid; a nil *TierPolicy in Config selects the implicit single-tier
// policy built from the flat Config.PerConnRatePerSec fields.
type TierPolicy struct {
	Tiers []TierSpec
	// Default names the tier for devices no rule or advertisement
	// claims (empty = the first tier).
	Default string
}

// ParseTierSpecs parses the attestd -tier flag syntax, one spec per
// string: name:class=N,match=prefix[+prefix...],rate=R,burst=B,
// conn-rate=R,conn-burst=B — every key optional, any order.
func ParseTierSpecs(specs []string) ([]TierSpec, error) {
	out := make([]TierSpec, 0, len(specs))
	for _, raw := range specs {
		name, opts, _ := strings.Cut(raw, ":")
		if name == "" {
			return nil, fmt.Errorf("server: tier spec %q has no name", raw)
		}
		ts := TierSpec{Name: name}
		if opts != "" {
			for _, kv := range strings.Split(opts, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("server: tier spec %q: %q is not key=value", raw, kv)
				}
				switch key {
				case "class":
					var c int
					if _, err := fmt.Sscanf(val, "%d", &c); err != nil || c < 0 || c > 255 {
						return nil, fmt.Errorf("server: tier spec %q: class %q is not 0..255", raw, val)
					}
					ts.Class = uint8(c)
				case "match":
					ts.Match = strings.Split(val, "+")
				case "rate":
					if _, err := fmt.Sscanf(val, "%g", &ts.RatePerSec); err != nil {
						return nil, fmt.Errorf("server: tier spec %q: bad rate %q", raw, val)
					}
				case "burst":
					if _, err := fmt.Sscanf(val, "%g", &ts.Burst); err != nil {
						return nil, fmt.Errorf("server: tier spec %q: bad burst %q", raw, val)
					}
				case "conn-rate":
					if _, err := fmt.Sscanf(val, "%g", &ts.PerConnRatePerSec); err != nil {
						return nil, fmt.Errorf("server: tier spec %q: bad conn-rate %q", raw, val)
					}
				case "conn-burst":
					if _, err := fmt.Sscanf(val, "%g", &ts.PerConnBurst); err != nil {
						return nil, fmt.Errorf("server: tier spec %q: bad conn-burst %q", raw, val)
					}
				default:
					return nil, fmt.Errorf("server: tier spec %q: unknown key %q", raw, key)
				}
			}
		}
		out = append(out, ts)
	}
	return out, nil
}

// tier is one admission tier at runtime. The limit fields live behind mu
// so the admin API can retune a live daemon; the serving path never takes
// that mutex — it loads the bucket pointer atomically and the bucket
// carries its own lock (shared budgets need one anyway).
type tier struct {
	name      string
	class     uint8
	match     []string
	isDefault bool

	mu        sync.Mutex // guards the four limit fields (admin overrides)
	rate      float64
	burst     float64
	connRate  float64
	connBurst float64

	// bucket is the tier-wide shared budget; nil = unlimited, so an
	// uncapped tier pays no mutex on the per-frame path.
	bucket atomic.Pointer[lockedBucket]

	admitted *obs.Counter  // attestd_tier_admitted_total{tier=name}
	limited  atomic.Uint64 // frames refused by this tier's shared bucket
	devices  atomic.Int64  // devices currently resolved into this tier
}

// allow spends one token from the tier-wide budget (always true for an
// uncapped tier).
func (t *tier) allow() bool {
	lb := t.bucket.Load()
	return lb == nil || lb.allow()
}

// connBucketAt builds a per-connection bucket with the tier's current
// per-conn limits on the given clock (nil = wall clock). A nil return
// means per-conn unlimited. Retunes apply to connections opened after the
// override; established connections keep the bucket they were admitted
// with (documented admin-API semantics).
func (t *tier) connBucketAt(now func() time.Time) *tokenBucket {
	t.mu.Lock()
	rate, burst := t.connRate, t.connBurst
	t.mu.Unlock()
	if rate <= 0 {
		return nil
	}
	b := newTokenBucket(rate, burst)
	if now != nil {
		b.now = now
		b.last = now()
	}
	return b
}

// limits snapshots the tier's current limit configuration.
func (t *tier) limits() (rate, burst, connRate, connBurst float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rate, t.burst, t.connRate, t.connBurst
}

// setLimits applies an admin override. Negative values keep the current
// setting; a zero rate lifts the corresponding cap. The tier-wide bucket
// is rebuilt (full at the new burst) so the new budget takes effect on
// the next frame; per-conn changes reach only new connections.
func (t *tier) setLimits(rate, burst, connRate, connBurst float64) {
	t.mu.Lock()
	if rate >= 0 {
		t.rate = rate
	}
	if burst >= 0 {
		t.burst = burst
	}
	if connRate >= 0 {
		t.connRate = connRate
	}
	if connBurst >= 0 {
		t.connBurst = connBurst
	}
	t.burst = defaultBurst(t.rate, t.burst, 64)
	t.connBurst = defaultBurst(t.connRate, t.connBurst, 16)
	rebuilt := (*lockedBucket)(nil)
	if t.rate > 0 {
		rebuilt = newLockedBucket(t.rate, t.burst)
	}
	t.mu.Unlock()
	t.bucket.Store(rebuilt)
}

// defaultBurst resolves a bucket depth: an explicit burst wins, an unset
// one defaults to max(floor, rate), and an uncapped rate needs none.
func defaultBurst(rate, burst, floor float64) float64 {
	if rate <= 0 {
		return burst
	}
	if burst > 0 {
		return burst
	}
	if rate > floor {
		return rate
	}
	return floor
}

// tierSet is the daemon's compiled tier policy.
type tierSet struct {
	tiers   []*tier
	byClass [256]*tier
	def     *tier
}

const tierAdmittedHelp = "Frames admitted past the tier admission gate, by tier."

// buildTiers compiles a TierPolicy (or the implicit single-tier policy
// when pol is nil) and registers the per-tier series. Counters must be
// preallocated here: the serving path records with atomics only.
func buildTiers(pol *TierPolicy, flatRate float64, flatBurst int, reg *obs.Registry) (*tierSet, error) {
	if pol == nil {
		// Back-compat: the flat Config.PerConnRatePerSec fields become a
		// single default tier with the same per-connection bucket and no
		// tier-wide cap — byte-identical admission decisions to the old
		// limiter (pinned by TestDefaultTierMatchesFlatLimiter).
		pol = &TierPolicy{Tiers: []TierSpec{{
			Name:              "default",
			PerConnRatePerSec: flatRate,
			PerConnBurst:      float64(flatBurst),
		}}}
	}
	if len(pol.Tiers) == 0 {
		return nil, errors.New("server: tier policy has no tiers")
	}
	ts := &tierSet{}
	seen := make(map[string]bool, len(pol.Tiers))
	for _, spec := range pol.Tiers {
		if spec.Name == "" {
			return nil, errors.New("server: tier with empty name")
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("server: duplicate tier name %q", spec.Name)
		}
		seen[spec.Name] = true
		for _, p := range spec.Match {
			if p == "" {
				return nil, fmt.Errorf("server: tier %q has an empty match prefix", spec.Name)
			}
		}
		t := &tier{
			name:      spec.Name,
			class:     spec.Class,
			match:     append([]string(nil), spec.Match...),
			rate:      spec.RatePerSec,
			burst:     defaultBurst(spec.RatePerSec, spec.Burst, 64),
			connRate:  spec.PerConnRatePerSec,
			connBurst: defaultBurst(spec.PerConnRatePerSec, spec.PerConnBurst, 16),
			admitted:  reg.Counter("attestd_tier_admitted_total", tierAdmittedHelp, obs.L("tier", spec.Name)),
		}
		if t.rate > 0 {
			t.bucket.Store(newLockedBucket(t.rate, t.burst))
		}
		if spec.Class != 0 {
			if ts.byClass[spec.Class] != nil {
				return nil, fmt.Errorf("server: tiers %q and %q both claim class %d",
					ts.byClass[spec.Class].name, spec.Name, spec.Class)
			}
			ts.byClass[spec.Class] = t
		}
		ts.tiers = append(ts.tiers, t)
	}
	ts.def = ts.tiers[0]
	if pol.Default != "" {
		ts.def = nil
		for _, t := range ts.tiers {
			if t.name == pol.Default {
				ts.def = t
			}
		}
		if ts.def == nil {
			return nil, fmt.Errorf("server: default tier %q is not declared", pol.Default)
		}
	}
	ts.def.isDefault = true
	return ts, nil
}

// resolve picks the tier for a device: longest configured ID-prefix match
// first, then the advertised class, then the default. Hello-time only —
// never on the per-frame path.
func (ts *tierSet) resolve(deviceID string, advertised uint8) *tier {
	var best *tier
	bestLen := -1
	for _, t := range ts.tiers {
		for _, p := range t.match {
			if len(p) > bestLen && strings.HasPrefix(deviceID, p) {
				best, bestLen = t, len(p)
			}
		}
	}
	if best != nil {
		return best
	}
	if advertised != 0 {
		if t := ts.byClass[advertised]; t != nil {
			return t
		}
	}
	return ts.def
}

// byName finds a tier by its admin/metrics label.
func (ts *tierSet) byName(name string) *tier {
	for _, t := range ts.tiers {
		if t.name == name {
			return t
		}
	}
	return nil
}
