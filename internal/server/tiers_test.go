package server

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"proverattest/internal/obs"
	"proverattest/internal/protocol"
	"proverattest/internal/transport"
)

// testTier builds one runtime tier from a spec, with its counter on a
// throwaway registry.
func testTier(t *testing.T, spec TierSpec) *tier {
	t.Helper()
	ts, err := buildTiers(&TierPolicy{Tiers: []TierSpec{spec}}, 0, 0, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	return ts.tiers[0]
}

// TestTierBucketBoundaries walks the tier per-connection bucket through
// the refill edge cases on a fake clock. These are the admission
// decisions the tier-isolation guarantee rides on, so each boundary is
// pinned exactly: a token materialises at the refill instant, not a
// frame earlier.
func TestTierBucketBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name  string
		rate  float64
		burst float64
		// steps alternate: advance the clock, then expect the given
		// admit/deny sequence.
		steps []struct {
			advance time.Duration
			want    []bool
		}
	}{
		{
			// An explicitly zero-depth bucket admits nothing, ever: credit
			// accrues but caps at burst 0, so it cannot reach one token.
			name: "zero burst admits nothing", rate: 10, burst: 0,
			steps: []struct {
				advance time.Duration
				want    []bool
			}{
				{0, []bool{false, false}},
				{time.Hour, []bool{false, false}},
			},
		},
		{
			// One token per second, depth one: the frame exactly at the
			// refill boundary is admitted, the one 1ms before is not.
			name: "refill exactly at the boundary", rate: 1, burst: 1,
			steps: []struct {
				advance time.Duration
				want    []bool
			}{
				{0, []bool{true, false}},
				{999 * time.Millisecond, []bool{false}},
				{1 * time.Millisecond, []bool{true, false}},
			},
		},
		{
			// A backwards clock step must not mint tokens (elapsed < 0 is
			// discarded) and must not wedge the bucket. The refill origin is
			// rewound to the skewed instant, so the clock recovering does
			// re-credit that interval — but the exposure is capped at one
			// burst, never skew-proportional.
			name: "clock skew backwards", rate: 10, burst: 2,
			steps: []struct {
				advance time.Duration
				want    []bool
			}{
				{0, []bool{true, true, false}},
				{-time.Hour, []bool{false, false}},
				{time.Hour, []bool{true, true, false}}, // recovery credit caps at burst 2
				{100 * time.Millisecond, []bool{true, false}},
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := testTier(t, TierSpec{
				Name:              "t",
				PerConnRatePerSec: tc.rate,
				PerConnBurst:      tc.burst,
			})
			// The per-conn burst default floor must not rewrite the
			// explicit test depths; pin it before trusting the walk.
			if _, _, _, gotBurst := tr.limits(); gotBurst != defaultBurst(tc.rate, tc.burst, 16) {
				t.Fatalf("tier connBurst = %v, want %v", gotBurst, defaultBurst(tc.rate, tc.burst, 16))
			}
			clk := time.Unix(1_000_000, 0)
			b := tr.connBucketAt(func() time.Time { return clk })
			if b == nil {
				t.Fatal("connBucketAt returned nil for a rated tier")
			}
			// Override the floored depth with the case's exact boundary
			// geometry (the floor is policy, the boundary math is what is
			// under test here).
			b.burst = tc.burst
			b.tokens = tc.burst
			for si, step := range tc.steps {
				clk = clk.Add(step.advance)
				for fi, want := range step.want {
					if got := b.allow(); got != want {
						t.Fatalf("step %d frame %d: allow() = %v, want %v", si, fi, got, want)
					}
				}
			}
		})
	}
}

// TestTierSharedBucketConcurrent hammers one tier-wide bucket from many
// goroutines (the real serving shape: all of a tier's connections share
// it) and checks the admitted total against the budget envelope. Run
// under -race this is also the data-race proof for the shared gate.
func TestTierSharedBucketConcurrent(t *testing.T) {
	tr := testTier(t, TierSpec{Name: "t", RatePerSec: 1, Burst: 100})
	const goroutines = 8
	const perG = 500
	var admitted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < perG; i++ {
				if tr.allow() {
					local++
				}
			}
			mu.Lock()
			admitted += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Exactly the burst, plus at most a few refill tokens if the race
	// detector stretches the loop across wall-clock seconds.
	if admitted < 100 || admitted > 110 {
		t.Fatalf("admitted %d frames from a burst-100 rate-1 tier bucket, want 100..110", admitted)
	}
	if got := tr.limited.Load(); got != 0 {
		t.Fatalf("tier.limited = %d, want 0 (allow() does not count; the serving path does)", got)
	}
}

// TestDefaultTierMatchesFlatLimiter pins the back-compat contract: with
// no TierPolicy configured, the implicit default tier's per-connection
// bucket makes byte-identical admission decisions to the old flat
// limiter for the same (rate, burst) on the same clock.
func TestDefaultTierMatchesFlatLimiter(t *testing.T) {
	const rate, burst = 5, 3
	ts, err := buildTiers(nil, rate, burst, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	if !ts.def.isDefault || ts.def.name != "default" || len(ts.tiers) != 1 {
		t.Fatalf("implicit policy compiled to %+v, want a single default tier", ts.def)
	}
	if ts.def.bucket.Load() != nil {
		t.Fatal("implicit default tier has a tier-wide cap; the flat limiter had none")
	}

	clk := time.Unix(1_000_000, 0)
	now := func() time.Time { return clk }
	old := newTokenBucket(rate, burst)
	old.now = now
	old.last = clk
	tiered := ts.def.connBucketAt(now)
	if tiered == nil {
		t.Fatal("implicit default tier built no per-conn bucket")
	}

	// A scripted traffic shape crossing every regime: in-burst, exhausted,
	// partial refill, long idle (cap at burst), fractional carry.
	script := []time.Duration{
		0, 0, 0, 0, 0, 0,
		100 * time.Millisecond, 0, 0,
		50 * time.Millisecond,
		time.Hour, 0, 0, 0, 0, 0,
		199 * time.Millisecond, 1 * time.Millisecond,
	}
	for i, adv := range script {
		clk = clk.Add(adv)
		if got, want := tiered.allow(), old.allow(); got != want {
			t.Fatalf("frame %d (advance %v): tiered limiter = %v, flat limiter = %v", i, adv, got, want)
		}
	}
}

func TestParseTierSpecs(t *testing.T) {
	specs, err := ParseTierSpecs([]string{
		"gold:class=1,match=gold-+vip-,rate=100,burst=200,conn-rate=10,conn-burst=20",
		"bulk",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []TierSpec{
		{Name: "gold", Class: 1, Match: []string{"gold-", "vip-"},
			RatePerSec: 100, Burst: 200, PerConnRatePerSec: 10, PerConnBurst: 20},
		{Name: "bulk"},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Fatalf("ParseTierSpecs = %+v, want %+v", specs, want)
	}

	for name, raw := range map[string]string{
		"empty name":    ":class=1",
		"not key=value": "gold:class",
		"class range":   "gold:class=300",
		"class junk":    "gold:class=abc",
		"bad rate":      "gold:rate=fast",
		"unknown key":   "gold:color=blue",
	} {
		if _, err := ParseTierSpecs([]string{raw}); err == nil {
			t.Errorf("%s: spec %q accepted", name, raw)
		}
	}
}

func TestBuildTiersValidation(t *testing.T) {
	for name, pol := range map[string]*TierPolicy{
		"no tiers":        {},
		"empty name":      {Tiers: []TierSpec{{Name: ""}}},
		"duplicate name":  {Tiers: []TierSpec{{Name: "a"}, {Name: "a"}}},
		"empty prefix":    {Tiers: []TierSpec{{Name: "a", Match: []string{""}}}},
		"duplicate class": {Tiers: []TierSpec{{Name: "a", Class: 3}, {Name: "b", Class: 3}}},
		"unknown default": {Tiers: []TierSpec{{Name: "a"}}, Default: "z"},
	} {
		if _, err := buildTiers(pol, 0, 0, obs.New()); err == nil {
			t.Errorf("%s: policy accepted", name)
		}
	}
}

func TestTierResolve(t *testing.T) {
	ts, err := buildTiers(&TierPolicy{
		Tiers: []TierSpec{
			{Name: "gold", Class: 1, Match: []string{"gold-"}},
			{Name: "goldplus", Class: 3, Match: []string{"gold-plus-"}},
			{Name: "bulk", Class: 2},
		},
		Default: "bulk",
	}, 0, 0, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		id         string
		advertised uint8
		want       string
	}{
		{"gold-007", 0, "gold"},
		{"gold-plus-007", 0, "goldplus"}, // longest prefix wins across tiers
		{"gold-007", 2, "gold"},          // ID rule beats the advertisement
		{"sensor-1", 1, "gold"},          // advertisement honoured with no rule
		{"sensor-1", 0, "bulk"},          // default
		{"sensor-1", 9, "bulk"},          // undeclared class falls to default
	} {
		if got := ts.resolve(tc.id, tc.advertised).name; got != tc.want {
			t.Errorf("resolve(%q, %d) = %s, want %s", tc.id, tc.advertised, got, tc.want)
		}
	}
}

// TestTierSetLimits pins the admin-override semantics: negative keeps,
// zero lifts the cap, and the tier-wide bucket is rebuilt immediately.
func TestTierSetLimits(t *testing.T) {
	tr := testTier(t, TierSpec{Name: "t", RatePerSec: 100, Burst: 2})
	if !tr.allow() || !tr.allow() {
		t.Fatal("burst-2 tier refused its burst")
	}

	// Keep everything: limits unchanged, but the bucket refills to full.
	tr.setLimits(-1, -1, -1, -1)
	rate, burst, connRate, connBurst := tr.limits()
	if rate != 100 || burst != 2 || connRate != 0 || connBurst != 0 {
		t.Fatalf("keep-all override changed limits to %v/%v/%v/%v", rate, burst, connRate, connBurst)
	}
	if !tr.allow() || !tr.allow() || tr.allow() {
		t.Fatal("rebuilt bucket is not full at the configured burst")
	}

	// Zero rate lifts the tier-wide cap entirely.
	tr.setLimits(0, -1, -1, -1)
	if tr.bucket.Load() != nil {
		t.Fatal("zero-rate override left a tier-wide bucket in place")
	}
	for i := 0; i < 1000; i++ {
		if !tr.allow() {
			t.Fatal("uncapped tier refused a frame")
		}
	}

	// Re-imposing a rate with an unset burst applies the default floor;
	// per-conn overrides land in the limits snapshot.
	tr.setLimits(10, 0, 7, 0)
	rate, burst, connRate, connBurst = tr.limits()
	if rate != 10 || burst != 64 || connRate != 7 || connBurst != 16 {
		t.Fatalf("override left limits %v/%v/%v/%v, want 10/64/7/16", rate, burst, connRate, connBurst)
	}
	if tr.bucket.Load() == nil {
		t.Fatal("re-imposed rate built no tier-wide bucket")
	}
}

// TestTierLimitedOverWire drives a two-tier daemon through a real
// connection: a flood riding a capped tier dies at the gate as
// rejects{tier_limited} while the tier's admitted counter stays inside
// the budget envelope.
func TestTierLimitedOverWire(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.Tiers = &TierPolicy{
			Tiers: []TierSpec{
				{Name: "gold", Class: 1, Match: []string{"gold-"}},
				{Name: "bulk", Class: 2, RatePerSec: 1, Burst: 3},
			},
			Default: "bulk",
		}
	})
	client, peer := net.Pipe()
	go s.HandleConn(peer)
	tc := transport.NewConn(client, transport.Options{WriteTimeout: 2 * time.Second})
	defer tc.Close()

	hello := &protocol.Hello{Freshness: protocol.FreshCounter, Auth: protocol.AuthHMACSHA1, Tier: 2, DeviceID: "sensor-1"}
	if err := tc.Send(hello.Encode()); err != nil {
		t.Fatal(err)
	}
	junk := (&protocol.StatsReport{Received: 1}).Encode()
	for i := 0; i < 40; i++ {
		if err := tc.Send(junk); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "tier-limited frames", func() bool {
		c := s.Counters()
		return c.TierLimited > 0 && c.StatsReports > 0 && c.StatsReports <= 3
	})
	bulk := s.tiers.byName("bulk")
	if got := bulk.admitted.Load(); got == 0 || got > 3 {
		t.Fatalf("bulk tier admitted %d frames, want 1..3 (burst)", got)
	}
	if got := bulk.limited.Load(); got == 0 {
		t.Fatal("bulk tier recorded no limited frames")
	}
	if gold := s.tiers.byName("gold").limited.Load(); gold != 0 {
		t.Fatalf("gold tier recorded %d limited frames for bulk's flood", gold)
	}
}
