// Package services implements the security services the paper positions
// attestation as a building block for (§1, citing SCUBA): secure code
// update and secure memory erasure, plus the verifier↔prover clock
// synchronisation the paper lists as future work (item 2). Each service
// runs inside the trust anchor behind the same authenticated,
// freshness-checked gate as attestation — the paper's future-work item 3
// ("generalize proposed techniques to other network protocols") made
// concrete.
package services

import (
	"encoding/binary"
	"fmt"

	"proverattest/internal/anchor"
	"proverattest/internal/crypto/cost"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
)

// UpdateRequest asks the anchor to program an image fragment into the
// application's flash region and confirm its integrity.
type UpdateRequest struct {
	// Offset is the byte offset inside the updatable region.
	Offset uint32
	// Image is the fragment to program.
	Image []byte
	// Digest is the expected SHA-1 of the fragment; the anchor verifies
	// the programmed bytes against it before reporting success.
	Digest [sha1.Size]byte
}

// EncodeUpdate serialises an update request body.
func EncodeUpdate(r UpdateRequest) []byte {
	buf := make([]byte, 4+4+sha1.Size+len(r.Image))
	binary.LittleEndian.PutUint32(buf[0:], r.Offset)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(r.Image)))
	copy(buf[8:], r.Digest[:])
	copy(buf[8+sha1.Size:], r.Image)
	return buf
}

// DecodeUpdate parses an update request body.
func DecodeUpdate(buf []byte) (UpdateRequest, error) {
	var r UpdateRequest
	if len(buf) < 8+sha1.Size {
		return r, fmt.Errorf("services: update body too short (%d bytes)", len(buf))
	}
	r.Offset = binary.LittleEndian.Uint32(buf[0:])
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	copy(r.Digest[:], buf[8:])
	if len(buf) != 8+sha1.Size+n {
		return r, fmt.Errorf("services: update body length %d does not match image length %d", len(buf), n)
	}
	r.Image = append([]byte(nil), buf[8+sha1.Size:]...)
	return r, nil
}

// UpdateResponse reports the post-update digest of the whole updatable
// region, so the verifier can confirm the new firmware state.
type UpdateResponse struct {
	RegionDigest [sha1.Size]byte
}

// DecodeUpdateResponse parses an update response body.
func DecodeUpdateResponse(buf []byte) (UpdateResponse, error) {
	var r UpdateResponse
	if len(buf) != sha1.Size {
		return r, fmt.Errorf("services: update response body is %d bytes, want %d", len(buf), sha1.Size)
	}
	copy(r.RegionDigest[:], buf)
	return r, nil
}

// InstallUpdateService registers the secure code update handler. region is
// the flash area updates may touch (normally the application image).
func InstallUpdateService(a *anchor.Anchor, region mcu.Region) {
	a.RegisterService(protocol.CmdSecureUpdate, func(e *mcu.Exec, body []byte) (uint8, []byte) {
		req, err := DecodeUpdate(body)
		if err != nil {
			return protocol.StatusRefused, nil
		}
		if !region.ContainsRange(region.Start+mcu.Addr(req.Offset), uint32(len(req.Image))) {
			return protocol.StatusRefused, nil
		}
		// Integrity first: hash the fragment before touching flash, so a
		// corrupted frame never half-programs the device.
		e.Tick(cost.SHA1Hash(len(req.Image)))
		if sha1.Sum(req.Image) != req.Digest {
			return protocol.StatusRefused, nil
		}
		e.Tick(cost.FlashWrite(len(req.Image)))
		if fault := e.Write(region.Start+mcu.Addr(req.Offset), req.Image); fault != nil {
			return protocol.StatusError, nil
		}
		// Re-measure the whole region so the verifier learns the new
		// firmware state in the same round trip.
		img, fault := e.Read(region.Start, region.Size)
		if fault != nil {
			return protocol.StatusError, nil
		}
		e.Tick(cost.SHA1Hash(len(img)))
		digest := sha1.Sum(img)
		return protocol.StatusOK, digest[:]
	})
}

// EraseRequest asks the anchor to zeroise a memory range and prove it.
type EraseRequest struct {
	Addr mcu.Addr
	Size uint32
}

// EncodeErase serialises an erase request body.
func EncodeErase(r EraseRequest) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:], uint32(r.Addr))
	binary.LittleEndian.PutUint32(buf[4:], r.Size)
	return buf
}

// DecodeErase parses an erase request body.
func DecodeErase(buf []byte) (EraseRequest, error) {
	var r EraseRequest
	if len(buf) != 8 {
		return r, fmt.Errorf("services: erase body is %d bytes, want 8", len(buf))
	}
	r.Addr = mcu.Addr(binary.LittleEndian.Uint32(buf[0:]))
	r.Size = binary.LittleEndian.Uint32(buf[4:])
	return r, nil
}

// InstallEraseService registers the secure memory erasure handler. allowed
// lists the regions the verifier may order erased (e.g. the RAM holding
// session secrets). The response body is the SHA-1 of the erased range —
// over all-zero bytes — computed from the actual memory, constituting the
// proof of erasure.
func InstallEraseService(a *anchor.Anchor, allowed ...mcu.Region) {
	a.RegisterService(protocol.CmdSecureErase, func(e *mcu.Exec, body []byte) (uint8, []byte) {
		req, err := DecodeErase(body)
		if err != nil || req.Size == 0 {
			return protocol.StatusRefused, nil
		}
		permitted := false
		for _, region := range allowed {
			if region.ContainsRange(req.Addr, req.Size) {
				permitted = true
				break
			}
		}
		if !permitted {
			return protocol.StatusRefused, nil
		}
		zeros := make([]byte, req.Size)
		if mcu.FlashRegion.Contains(req.Addr) {
			e.Tick(cost.FlashWrite(int(req.Size)))
		} else {
			e.Tick(cost.Cycles(req.Size / 4)) // RAM fill, one word per cycle
		}
		if fault := e.Write(req.Addr, zeros); fault != nil {
			return protocol.StatusError, nil
		}
		// Proof of erasure: hash the range back out of memory.
		back, fault := e.Read(req.Addr, req.Size)
		if fault != nil {
			return protocol.StatusError, nil
		}
		e.Tick(cost.SHA1Hash(len(back)))
		digest := sha1.Sum(back)
		return protocol.StatusOK, digest[:]
	})
}

// ErasureProof computes the digest an honest erasure of n bytes yields,
// for verifier-side checking.
func ErasureProof(n uint32) [sha1.Size]byte {
	return sha1.Sum(make([]byte, n))
}

// SyncRequest carries the verifier's clock reading for synchronisation.
type SyncRequest struct {
	VerifierTimeMs uint64
}

// EncodeSync serialises a sync request body.
func EncodeSync(r SyncRequest) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, r.VerifierTimeMs)
	return buf
}

// DecodeSync parses a sync request body.
func DecodeSync(buf []byte) (SyncRequest, error) {
	if len(buf) != 8 {
		return SyncRequest{}, fmt.Errorf("services: sync body is %d bytes, want 8", len(buf))
	}
	return SyncRequest{VerifierTimeMs: binary.LittleEndian.Uint64(buf)}, nil
}

// SyncResponse reports the adjustment the anchor applied.
type SyncResponse struct {
	AppliedDeltaMs int64
	ClampedDeltaMs int64 // the raw delta before clamping, for diagnostics
}

// DecodeSyncResponse parses a sync response body.
func DecodeSyncResponse(buf []byte) (SyncResponse, error) {
	if len(buf) != 16 {
		return SyncResponse{}, fmt.Errorf("services: sync response body is %d bytes, want 16", len(buf))
	}
	return SyncResponse{
		AppliedDeltaMs: int64(binary.LittleEndian.Uint64(buf[0:])),
		ClampedDeltaMs: int64(binary.LittleEndian.Uint64(buf[8:])),
	}, nil
}

// InstallClockSyncService registers the clock-synchronisation handler
// (the paper's future-work item 2). The anchor compares the verifier's
// authenticated, freshness-checked clock reading against its own and
// adjusts the protected sync-offset word, clamping each step to
// ±maxStepMs so a single malicious-but-authentic sync cannot rewind the
// clock past the freshness window (which would reopen the §5 delayed-
// replay hole). Clock synchronisation requires counter freshness — using
// timestamps to fix a broken clock is circular.
func InstallClockSyncService(a *anchor.Anchor, maxStepMs int64) {
	a.RegisterService(protocol.CmdClockSync, func(e *mcu.Exec, body []byte) (uint8, []byte) {
		req, err := DecodeSync(body)
		if err != nil {
			return protocol.StatusRefused, nil
		}
		local, fault := a.ReadClock(e)
		if fault != nil {
			return protocol.StatusError, nil
		}
		raw := int64(req.VerifierTimeMs) - int64(local)
		applied := raw
		if applied > maxStepMs {
			applied = maxStepMs
		}
		if applied < -maxStepMs {
			applied = -maxStepMs
		}
		// Adjust the protected offset word (writable only by Code_Attest
		// when Protection.SyncOffset is installed).
		cur, fault := e.Read(anchor.SyncOffsetAddr, 8)
		if fault != nil {
			return protocol.StatusError, nil
		}
		next := int64(binary.LittleEndian.Uint64(cur)) + applied
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(next))
		if fault := e.Write(anchor.SyncOffsetAddr, out[:]); fault != nil {
			return protocol.StatusError, nil
		}
		e.Tick(64)
		resp := make([]byte, 16)
		binary.LittleEndian.PutUint64(resp[0:], uint64(applied))
		binary.LittleEndian.PutUint64(resp[8:], uint64(raw))
		return protocol.StatusOK, resp
	})
}
