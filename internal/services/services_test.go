package services_test

import (
	"bytes"
	"testing"

	"proverattest/internal/anchor"
	"proverattest/internal/core"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
	"proverattest/internal/services"
	"proverattest/internal/sim"
)

// serviceRig builds a booted scenario with all services installed.
func serviceRig(t *testing.T, cfg core.ScenarioConfig) *core.Scenario {
	t.Helper()
	cfg.EnableServices = true
	if cfg.Auth == protocol.AuthNone {
		cfg.Auth = protocol.AuthHMACSHA1
	}
	if cfg.Freshness == protocol.FreshNone {
		cfg.Freshness = protocol.FreshCounter
	}
	prot := anchor.FullProtection()
	prot.SyncOffset = true
	cfg.Protection = prot
	s, err := core.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runCommand issues one command and returns the verified response.
func runCommand(t *testing.T, s *core.Scenario, kind protocol.CommandKind, body []byte) *protocol.CommandResp {
	t.Helper()
	var got *protocol.CommandResp
	s.IssueCommandAt(s.K.Now()+sim.Millisecond, kind, body, func(r *protocol.CommandResp) { got = r })
	s.RunUntil(s.K.Now() + 10*sim.Second)
	if got == nil {
		t.Fatal("no command response")
	}
	return got
}

func TestSecureUpdateEndToEnd(t *testing.T) {
	s := serviceRig(t, core.ScenarioConfig{})

	// New firmware fragment for offset 0x2000 of the app image.
	fragment := bytes.Repeat([]byte{0xF1, 0xF2, 0xF3, 0xF4}, 256) // 1 KB
	body := services.EncodeUpdate(services.UpdateRequest{
		Offset: 0x2000,
		Image:  fragment,
		Digest: sha1.Sum(fragment),
	})
	resp := runCommand(t, s, protocol.CmdSecureUpdate, body)
	if resp.Status != protocol.StatusOK {
		t.Fatalf("update status = %d", resp.Status)
	}

	// The flash now contains the fragment.
	got := s.Dev.M.Space.DirectRead(core.AppImageRegion.Start+0x2000, uint32(len(fragment)))
	if !bytes.Equal(got, fragment) {
		t.Fatal("flash does not contain the update")
	}

	// The response digest matches the updated region.
	ur, err := services.DecodeUpdateResponse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	img := s.Dev.M.Space.DirectRead(core.AppImageRegion.Start, core.AppImageRegion.Size)
	if ur.RegionDigest != sha1.Sum(img) {
		t.Fatal("update response digest does not match the region")
	}
}

func TestSecureUpdateRejectsCorruptFragment(t *testing.T) {
	s := serviceRig(t, core.ScenarioConfig{})
	fragment := []byte("corrupted in transit")
	wrong := sha1.Sum([]byte("what the verifier meant"))
	before := s.Dev.M.Space.DirectRead(core.AppImageRegion.Start+0x100, 20)

	body := services.EncodeUpdate(services.UpdateRequest{Offset: 0x100, Image: fragment, Digest: wrong})
	resp := runCommand(t, s, protocol.CmdSecureUpdate, body)
	if resp.Status != protocol.StatusRefused {
		t.Fatalf("corrupt update status = %d, want refused", resp.Status)
	}
	after := s.Dev.M.Space.DirectRead(core.AppImageRegion.Start+0x100, 20)
	if !bytes.Equal(before, after) {
		t.Fatal("refused update still modified flash")
	}
}

func TestSecureUpdateRejectsOutOfRange(t *testing.T) {
	s := serviceRig(t, core.ScenarioConfig{})
	frag := []byte{1, 2, 3, 4}
	// Offset pushes the write past the app region.
	body := services.EncodeUpdate(services.UpdateRequest{
		Offset: core.AppImageRegion.Size - 2,
		Image:  frag,
		Digest: sha1.Sum(frag),
	})
	resp := runCommand(t, s, protocol.CmdSecureUpdate, body)
	if resp.Status != protocol.StatusRefused {
		t.Fatalf("out-of-range update status = %d, want refused", resp.Status)
	}
}

func TestSecureEraseEndToEnd(t *testing.T) {
	s := serviceRig(t, core.ScenarioConfig{})
	target := mcu.RAMRegion.Start + 0x4000
	const size = 512
	// The target range starts non-zero (device RAM pattern).
	if bytes.Equal(s.Dev.M.Space.DirectRead(target, size), make([]byte, size)) {
		t.Fatal("test precondition: RAM already zero")
	}

	body := services.EncodeErase(services.EraseRequest{Addr: target, Size: size})
	resp := runCommand(t, s, protocol.CmdSecureErase, body)
	if resp.Status != protocol.StatusOK {
		t.Fatalf("erase status = %d", resp.Status)
	}
	if !bytes.Equal(s.Dev.M.Space.DirectRead(target, size), make([]byte, size)) {
		t.Fatal("range not zeroised")
	}
	// Proof of erasure: digest over zeros.
	want := services.ErasureProof(size)
	if !bytes.Equal(resp.Body, want[:]) {
		t.Fatalf("erasure proof = %x, want %x", resp.Body, want)
	}
}

func TestSecureEraseRefusesDisallowedRegion(t *testing.T) {
	s := serviceRig(t, core.ScenarioConfig{})
	// Only RAM is allowed; asking for the flash counter region is refused.
	body := services.EncodeErase(services.EraseRequest{Addr: anchor.CounterAddr, Size: 8})
	resp := runCommand(t, s, protocol.CmdSecureErase, body)
	if resp.Status != protocol.StatusRefused {
		t.Fatalf("disallowed erase status = %d, want refused", resp.Status)
	}
	// Zero-size erases are refused too.
	body = services.EncodeErase(services.EraseRequest{Addr: mcu.RAMRegion.Start, Size: 0})
	resp = runCommand(t, s, protocol.CmdSecureErase, body)
	if resp.Status != protocol.StatusRefused {
		t.Fatalf("zero-size erase status = %d, want refused", resp.Status)
	}
}

func TestClockSyncCorrectsDrift(t *testing.T) {
	// Prover with a wide clock; the verifier runs 300 ms ahead. After a
	// few sync rounds the prover's adjusted clock matches the verifier's.
	s := serviceRig(t, core.ScenarioConfig{
		Clock:                 anchor.ClockWide64,
		VerifierClockOffsetMs: 300,
		MaxSyncStepMs:         200,
	})
	// Two rounds: clamped +200, then +100.
	for i := 0; i < 2; i++ {
		verifierNow := uint64(int64(s.K.Now()/sim.Millisecond) + 300)
		body := services.EncodeSync(services.SyncRequest{VerifierTimeMs: verifierNow})
		resp := runCommand(t, s, protocol.CmdClockSync, body)
		if resp.Status != protocol.StatusOK {
			t.Fatalf("round %d: sync status = %d", i, resp.Status)
		}
	}
	off := s.Dev.A.SyncOffsetMs()
	if off < 295 || off > 305 {
		t.Fatalf("sync offset = %d ms, want ≈300", off)
	}
	// And genuine timestamped traffic from this skewed verifier is now
	// acceptable: switch check via the prover clock directly.
	proverMs := int64(s.Dev.A.ClockNowMs())
	verifierMs := int64(s.K.Now()/sim.Millisecond) + 300
	if d := verifierMs - proverMs; d < -50 || d > 50 {
		t.Fatalf("clocks still %d ms apart after sync", d)
	}
}

func TestClockSyncClampsPerStep(t *testing.T) {
	// A malicious-but-authentic sync trying to rewind the clock by an
	// hour is clamped to one step, keeping the §5 delayed-replay hole
	// closed.
	s := serviceRig(t, core.ScenarioConfig{
		Clock:         anchor.ClockWide64,
		MaxSyncStepMs: 200,
	})
	body := services.EncodeSync(services.SyncRequest{VerifierTimeMs: 0}) // "it is the epoch"
	resp := runCommand(t, s, protocol.CmdClockSync, body)
	if resp.Status != protocol.StatusOK {
		t.Fatalf("sync status = %d", resp.Status)
	}
	sr, err := services.DecodeSyncResponse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if sr.AppliedDeltaMs != -200 {
		t.Fatalf("applied delta = %d ms, want clamped -200", sr.AppliedDeltaMs)
	}
	if sr.ClampedDeltaMs >= sr.AppliedDeltaMs {
		t.Fatalf("raw delta %d should be far below the applied %d", sr.ClampedDeltaMs, sr.AppliedDeltaMs)
	}
	if off := s.Dev.A.SyncOffsetMs(); off != -200 {
		t.Fatalf("offset = %d, want -200", off)
	}
}

func TestCommandsShareFreshnessWithAttestation(t *testing.T) {
	// A command consumes counter value n; replaying it after an
	// attestation (counter n+1) is stale — one freshness stream.
	s := serviceRig(t, core.ScenarioConfig{})
	req, err := s.V.NewCommand(protocol.CmdSecureErase,
		services.EncodeErase(services.EraseRequest{Addr: mcu.RAMRegion.Start, Size: 64}))
	if err != nil {
		t.Fatal(err)
	}
	frame := req.Encode()
	executed := func() uint64 { return s.Dev.A.Stats.CommandsExecuted }

	s.K.At(s.K.Now()+sim.Millisecond, func() {
		s.C.Send("verifier", "prover", frame)
	})
	s.RunUntil(s.K.Now() + 5*sim.Second)
	if executed() != 1 {
		t.Fatalf("command not executed (%d)", executed())
	}

	// An attestation round advances the shared counter.
	s.IssueAt(s.K.Now() + sim.Millisecond)
	s.RunUntil(s.K.Now() + 5*sim.Second)

	// Replay the recorded command frame: stale counter, refused before
	// the handler runs.
	s.K.At(s.K.Now()+sim.Millisecond, func() {
		s.C.Send("verifier", "prover", frame)
	})
	s.RunUntil(s.K.Now() + 5*sim.Second)
	if executed() != 1 {
		t.Fatal("replayed command executed — freshness streams are not shared")
	}
	if s.Dev.A.Stats.FreshnessRejected == 0 {
		t.Fatal("replay not counted as a freshness reject")
	}
}

func TestForgedCommandRejectedCheaply(t *testing.T) {
	s := serviceRig(t, core.ScenarioConfig{})
	forged := &protocol.CommandReq{
		Kind:      protocol.CmdSecureErase,
		Freshness: protocol.FreshCounter,
		Auth:      protocol.AuthHMACSHA1,
		Counter:   99,
		Body:      services.EncodeErase(services.EraseRequest{Addr: mcu.RAMRegion.Start, Size: mcu.RAMRegion.Size}),
		Tag:       bytes.Repeat([]byte{0xAA}, 20),
	}
	before := s.Dev.M.ActiveCycles
	s.K.At(s.K.Now()+sim.Millisecond, func() {
		s.C.Send("verifier", "prover", forged.Encode())
	})
	s.RunUntil(s.K.Now() + 5*sim.Second)
	if s.Dev.A.Stats.CommandsExecuted != 0 {
		t.Fatal("forged command executed")
	}
	if s.Dev.A.Stats.AuthRejected != 1 {
		t.Fatalf("AuthRejected = %d, want 1", s.Dev.A.Stats.AuthRejected)
	}
	if spent := (s.Dev.M.ActiveCycles - before).Millis(); spent > 2 {
		t.Fatalf("rejecting a forged command cost %.2f ms, want <2", spent)
	}
}

func TestUnregisteredCommandRefused(t *testing.T) {
	// A scenario without services still answers (refuses) authentic
	// commands, with a sealed verdict.
	cfg := core.ScenarioConfig{
		Freshness:  protocol.FreshCounter,
		Auth:       protocol.AuthHMACSHA1,
		Protection: anchor.FullProtection(),
	}
	s, err := core.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got *protocol.CommandResp
	s.IssueCommandAt(s.K.Now()+sim.Millisecond, protocol.CmdSecureErase, nil,
		func(r *protocol.CommandResp) { got = r })
	s.RunUntil(s.K.Now() + 5*sim.Second)
	if got == nil {
		t.Fatal("no response to unregistered command")
	}
	if got.Status != protocol.StatusRefused {
		t.Fatalf("status = %d, want refused", got.Status)
	}
}

func TestBodyCodecs(t *testing.T) {
	if _, err := services.DecodeUpdate([]byte("short")); err == nil {
		t.Error("short update body decoded")
	}
	if _, err := services.DecodeUpdate(make([]byte, 8+sha1.Size+5)); err == nil {
		t.Error("length-mismatched update body decoded")
	}
	if _, err := services.DecodeErase([]byte{1, 2, 3}); err == nil {
		t.Error("short erase body decoded")
	}
	if _, err := services.DecodeSync([]byte{1}); err == nil {
		t.Error("short sync body decoded")
	}
	if _, err := services.DecodeSyncResponse([]byte{1, 2}); err == nil {
		t.Error("short sync response decoded")
	}
	if _, err := services.DecodeUpdateResponse([]byte{1, 2}); err == nil {
		t.Error("short update response decoded")
	}
}
