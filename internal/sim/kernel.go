// Package sim provides the discrete-event simulation kernel on which the
// whole reproduction runs. Simulated time is a virtual nanosecond counter;
// the MCU model converts CPU cycles at 24 MHz into nanoseconds, and the
// network channel schedules message deliveries as events on the same
// timeline, so prover, verifier and adversary share one deterministic clock.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration's constants but for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (FIFO tie-break), which keeps runs deterministic.
type Event struct {
	when Time
	seq  uint64
	fn   func()
	k    *Kernel

	index     int // heap index, -1 once popped
	cancelled bool
}

// When reports the simulated time at which the event fires (or fired).
func (e *Event) When() Time { return e.when }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or was already cancelled is a no-op. The event stays in the
// queue until its turn comes (lazy deletion), but it stops counting toward
// Pending immediately, so "is the timeline drained?" polls cannot spin on a
// queue of ghosts.
func (e *Event) Cancel() {
	if e.cancelled || e.index < 0 {
		return
	}
	e.cancelled = true
	e.k.live--
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	live   int // queued events that are neither fired nor cancelled
	halted bool
}

// NewKernel returns a kernel at time zero with an empty event queue.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.queue)
	return k
}

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Fired reports how many events have executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending reports the number of live events still queued. Cancelled events
// awaiting lazy removal from the heap are not counted.
func (k *Kernel) Pending() int { return k.live }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past (t < Now) panics: it indicates a modelling bug, and silently
// reordering time would invalidate every downstream measurement.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before current time %v", t, k.now))
	}
	e := &Event{when: t, seq: k.seq, fn: fn, k: k}
	k.seq++
	k.live++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Halt stops the run loop after the currently executing event returns.
func (k *Kernel) Halt() { k.halted = true }

// Step fires the single earliest pending event. It reports false when the
// queue is empty.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.cancelled {
			// Already uncounted at Cancel time.
			continue
		}
		k.live--
		k.now = e.when
		k.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Halt is called.
func (k *Kernel) Run() {
	k.halted = false
	for !k.halted && k.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// the deadline even if the queue still holds later events. It is the
// standard way to run a scenario "for n simulated seconds".
func (k *Kernel) RunUntil(deadline Time) {
	k.halted = false
	for !k.halted {
		// Peek: discard cancelled heads without firing.
		for k.queue.Len() > 0 && k.queue[0].cancelled {
			heap.Pop(&k.queue)
		}
		if k.queue.Len() == 0 || k.queue[0].when > deadline {
			break
		}
		k.Step()
	}
	if !k.halted && k.now < deadline {
		k.now = deadline
	}
}
