package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
	if k.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", k.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var at Time
	k.At(100, func() {
		k.After(50, func() { at = k.Now() })
	})
	k.Run()
	if at != 150 {
		t.Fatalf("After(50) from t=100 fired at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(10, func() { fired = true })
	e.Cancel()
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", k.Fired())
	}
}

func TestCancelDuringRun(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(20, func() { fired = true })
	k.At(10, func() { e.Cancel() })
	k.Run()
	if fired {
		t.Fatal("event cancelled at t=10 still fired at t=20")
	}
}

func TestPendingExcludesCancelledEvents(t *testing.T) {
	// Regression: Pending used to report heap length, so cancelled events
	// awaiting lazy removal made "is the queue drained?" polls spin on
	// ghosts.
	k := NewKernel()
	a := k.At(10, func() {})
	b := k.At(20, func() {})
	c := k.At(30, func() {})
	if k.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", k.Pending())
	}
	b.Cancel()
	if k.Pending() != 2 {
		t.Fatalf("Pending after one cancel = %d, want 2", k.Pending())
	}
	b.Cancel() // double-cancel must not double-discount
	if k.Pending() != 2 {
		t.Fatalf("Pending after double cancel = %d, want 2", k.Pending())
	}
	a.Cancel()
	c.Cancel()
	if k.Pending() != 0 {
		t.Fatalf("Pending with only ghosts queued = %d, want 0", k.Pending())
	}
	k.Run()
	if k.Fired() != 0 || k.Pending() != 0 {
		t.Fatalf("after draining ghosts: fired=%d pending=%d", k.Fired(), k.Pending())
	}
}

func TestPendingAfterFire(t *testing.T) {
	k := NewKernel()
	e := k.At(10, func() {})
	k.At(20, func() {})
	k.Run()
	if k.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", k.Pending())
	}
	e.Cancel() // cancelling a fired event must not go negative
	if k.Pending() != 0 {
		t.Fatalf("Pending after cancelling a fired event = %d, want 0", k.Pending())
	}
}

func TestCancelOfHeadInsideRunUntil(t *testing.T) {
	// An executing event cancels the event that is currently the queue
	// head; RunUntil must discard it without firing and keep Pending
	// truthful throughout.
	k := NewKernel()
	var fired []Time
	var head *Event
	head = k.At(20, func() { fired = append(fired, 20) })
	k.At(10, func() {
		fired = append(fired, 10)
		head.Cancel()
		if k.Pending() != 1 { // only the t=30 event remains live
			t.Errorf("Pending mid-run = %d, want 1", k.Pending())
		}
	})
	k.At(30, func() { fired = append(fired, 30) })
	k.RunUntil(25)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired %v, want [10] (cancelled head must not fire)", fired)
	}
	if k.Now() != 25 {
		t.Fatalf("Now() = %v, want 25", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (the t=30 event)", k.Pending())
	}
	k.RunUntil(40)
	if len(fired) != 2 || fired[1] != 30 {
		t.Fatalf("fired %v, want [10 30]", fired)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", k.Pending())
	}
}

func TestHalt(t *testing.T) {
	k := NewKernel()
	count := 0
	k.At(1, func() { count++; k.Halt() })
	k.At(2, func() { count++ })
	k.Run()
	if count != 1 {
		t.Fatalf("events after Halt ran: count = %d", count)
	}
	// The queue still holds the t=2 event; a second Run drains it.
	k.Run()
	if count != 2 {
		t.Fatalf("second Run did not resume: count = %d", count)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.At(10, func() { fired = append(fired, 10) })
	k.At(20, func() { fired = append(fired, 20) })
	k.At(30, func() { fired = append(fired, 30) })
	k.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(20) fired %v, want [10 20]", fired)
	}
	if k.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", k.Now())
	}
	k.RunUntil(100)
	if len(fired) != 3 {
		t.Fatalf("second RunUntil fired %v, want all three", fired)
	}
	if k.Now() != 100 {
		t.Fatalf("Now() = %v after RunUntil(100), want 100 (idle advance)", k.Now())
	}
}

func TestRunUntilWithOnlyCancelledEvents(t *testing.T) {
	k := NewKernel()
	e := k.At(10, func() { t.Error("cancelled event fired") })
	e.Cancel()
	k.RunUntil(50)
	if k.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", k.Now())
	}
}

func TestSelfSchedulingChain(t *testing.T) {
	// An event that reschedules itself models periodic hardware (timer
	// wrap-arounds); verify the chain advances time correctly.
	k := NewKernel()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			k.After(7, tick)
		}
	}
	k.At(0, tick)
	k.Run()
	if count != 100 {
		t.Fatalf("tick chain ran %d times, want 100", count)
	}
	if k.Now() != 99*7 {
		t.Fatalf("Now() = %v, want %v", k.Now(), 99*7)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := NewKernel()
		var log []Time
		for i := 0; i < 50; i++ {
			d := Duration((i * 37) % 11)
			k.After(d, func() { log = append(log, k.Now()) })
		}
		k.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2_500_000, "2.500ms"},
		{3 * Second, "3.000000s"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("Time(%d).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTimeConversionsQuick(t *testing.T) {
	f := func(ms uint16) bool {
		tt := Time(ms) * Millisecond
		return tt.Milliseconds() == float64(ms) && tt.Seconds() == float64(ms)/1000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
