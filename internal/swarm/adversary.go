package swarm

import (
	"fmt"

	"proverattest/internal/anchor"
	"proverattest/internal/core"
	"proverattest/internal/mcu"
	"proverattest/internal/protocol"
)

// The swarm adversary matrix: every way a member (or the untrusted
// aggregation fabric) can try to cheat the aggregate, each required to be
// detected by the aggregate check AND localized to the offending subtree
// by bisection.

// SwarmAdversary names one behaviour in the matrix.
type SwarmAdversary int

const (
	// SwarmHonestFleet is the clean baseline: the aggregate verifies,
	// zero bisection probes, and after the first (full-measurement)
	// round every member answers from its stored digest.
	SwarmHonestFleet SwarmAdversary = iota
	// SwarmAbsentMember drops an interior member: its whole subtree goes
	// silent, the presence bitmap exposes the gap, and after removal the
	// rebuilt tree verifies clean without it.
	SwarmAbsentMember
	// SwarmColluder is a subtree root that forges its children's
	// aggregate tags and presence bits instead of querying them. The
	// per-device keyed fold pins the forgery on the colluder, not the
	// framed children.
	SwarmColluder
	// SwarmDirtyMember has its attested RAM modified mid-deployment; the
	// write monitor latches, the next round re-measures, and the
	// deviating digest breaks the aggregate.
	SwarmDirtyMember
	// SwarmLiarMember modifies RAM and rearms the (unprotected) monitor
	// from application code to hide inside a clean aggregate: the rearm
	// bumps the hardware epoch, desyncing its own tag from the
	// verifier's record.
	SwarmLiarMember
)

func (a SwarmAdversary) String() string {
	switch a {
	case SwarmHonestFleet:
		return "honest"
	case SwarmAbsentMember:
		return "absent"
	case SwarmColluder:
		return "colluder"
	case SwarmDirtyMember:
		return "dirty"
	case SwarmLiarMember:
		return "liar"
	}
	return fmt.Sprintf("swarm-adversary(%d)", int(a))
}

// SwarmCellResult is one adversary-matrix cell, decided by observation.
type SwarmCellResult struct {
	Adversary SwarmAdversary
	Provers   int
	Fanout    int
	// Target is the compromised member (-1 for the honest cell).
	Target int

	// CleanRounds is how many warm-up rounds verified before the
	// compromise; CleanVerifierMsgs the verifier-side frames each took
	// (the O(1) headline); CleanTreeMsgs the tree-edge frames.
	CleanRounds      int
	CleanVerifierMsg uint64
	CleanTreeMsgs    uint64

	// Detected is whether the post-compromise aggregate check failed;
	// Verdict is the check error's text.
	Detected bool
	Verdict  string
	// Localized is whether bisection attributed the failure to the
	// target member, with the right cause; Findings lists everything it
	// flagged and BisectProbes what the localization cost.
	Localized    bool
	Findings     []Finding
	BisectProbes uint64

	// RecoveredClean is whether the round after recovery (removing the
	// absent member / resyncing the liar's epoch / restoring memory)
	// verified again. Always exercised so the matrix proves the resync
	// contract, not just detection.
	RecoveredClean bool
}

// RunSwarmCell plays one adversary cell on an n-member monitored fleet.
func RunSwarmCell(adv SwarmAdversary, n, fanout int) (SwarmCellResult, error) {
	res := SwarmCellResult{Adversary: adv, Provers: n, Fanout: fanout, Target: -1}

	prot := anchor.FullProtection()
	if adv == SwarmLiarMember {
		// The liar cell runs without the EA-MPU rearm rule — with it the
		// rearm faults and the cell degenerates to SwarmDirtyMember.
		prot.Monitor = false
	}
	fleet, err := core.NewFleet(core.FleetConfig{
		Provers: n,
		Fanout:  fanout,
		Scenario: core.ScenarioConfig{
			Freshness:  protocol.FreshCounter,
			Auth:       protocol.AuthHMACSHA1,
			Protection: prot,
			Monitor:    true,
		},
	})
	if err != nil {
		return res, err
	}
	fs, err := NewFleetSwarm(fleet)
	if err != nil {
		return res, err
	}

	// Two clean rounds: the first full-measures everywhere (epoch 0→1),
	// the second rides every member's stored digest.
	for i := 0; i < 2; i++ {
		before := fs.VerifierMessages
		treeBefore := fs.TreeMessages
		if _, err := fs.CheckedRound(); err != nil {
			return res, fmt.Errorf("swarm: clean round %d failed: %w", i+1, err)
		}
		res.CleanRounds++
		res.CleanVerifierMsg = fs.VerifierMessages - before
		res.CleanTreeMsgs = fs.TreeMessages - treeBefore
	}

	// Compromise: pick an interior member (a child of the root) so
	// localization has to tell subtree levels apart — except the honest
	// cell, which compromises nobody.
	topo := fs.V.Topology()
	root, _ := topo.Root()
	kids := topo.Children(root, nil)
	target := kids[0]
	appPC := mcu.FlashRegion.Start
	dirtyAddr := mcu.RAMRegion.Start + 0x40000

	switch adv {
	case SwarmHonestFleet:
		target = -1
	case SwarmAbsentMember:
		fs.Absent[target] = true
	case SwarmColluder:
		fs.ForgeChildren[target] = true
	case SwarmDirtyMember, SwarmLiarMember:
		// Target a deep member instead: the dirty/liar story is about one
		// device hiding inside the aggregate, not about fabric position.
		target = topo.MemberAt(topo.Len() - 1)
		dev := fleet.Members[target].Dev
		dev.M.Bus.Write(appPC, dirtyAddr, []byte{0xE7, 0xE7, 0xE7, 0xE7})
		if adv == SwarmLiarMember {
			if f := dev.M.Bus.Store32(appPC, mcu.MonCtrlAddr, mcu.MonRearm); f != nil {
				return res, fmt.Errorf("swarm: liar rearm unexpectedly blocked: %v", f)
			}
		}
	}
	res.Target = target

	// The compromised round.
	_, err = fs.CheckedRound()
	if adv == SwarmHonestFleet {
		res.Detected = err != nil
		res.RecoveredClean = err == nil
		if err != nil {
			res.Verdict = err.Error()
		}
		return res, nil
	}
	if err == nil {
		res.Verdict = "accepted (undetected)"
		return res, nil
	}
	res.Detected = true
	res.Verdict = err.Error()

	// Localize by bisection.
	probesBefore := fs.V.Stats.Bisections
	res.Findings = fs.V.Localize(root, fs.Query)
	res.BisectProbes = fs.V.Stats.Bisections - probesBefore
	wantCause := map[SwarmAdversary]Cause{
		SwarmAbsentMember: CauseAbsent,
		SwarmColluder:     CauseFoldForgery,
		SwarmDirtyMember:  CauseMismatch,
		SwarmLiarMember:   CauseMismatch,
	}[adv]
	for _, f := range res.Findings {
		if f.Member == target && f.Cause == wantCause {
			res.Localized = true
		}
	}

	// Recovery, proving the contract each failure mode prescribes.
	switch adv {
	case SwarmAbsentMember:
		// Member loss: rebuild the tree without it (and without its
		// subtree's now-orphaned members re-parented by the rebuild).
		fs.V.Remove(target)
	case SwarmColluder:
		fs.ForgeChildren = make(map[int]bool)
	case SwarmDirtyMember, SwarmLiarMember:
		// Restore the image, then resync via a direct full measurement:
		// the next swarm round's full re-measure lands on a fresh epoch,
		// which the verifier learns through the 1:1 resync round.
		dev := fleet.Members[target].Dev
		golden := dev.GoldenRAM()
		off := dirtyAddr - mcu.RAMRegion.Start
		dev.M.Bus.Write(appPC, dirtyAddr, golden[off:off+4])
		probe := fs.V.NewRequest(target, true)
		presp, qerr := fs.Query(probe)
		if qerr != nil || presp == nil {
			return res, fmt.Errorf("swarm: resync probe failed: %v", qerr)
		}
		// The probe's own tag reflects the member's current epoch; scan
		// forward for the epoch that makes it verify (bounded — epochs
		// only advance by explicit rearms).
		base := fs.V.ExpectedEpoch(target)
		for e := base; e < base+16; e++ {
			fs.V.SetEpoch(target, e)
			if fs.V.Check(probe, presp) == nil {
				break
			}
		}
	}
	_, rerr := fs.CheckedRound()
	res.RecoveredClean = rerr == nil
	return res, nil
}

// RunSwarmMatrix plays every adversary cell on an n-member fleet.
func RunSwarmMatrix(n, fanout int) ([]SwarmCellResult, error) {
	var out []SwarmCellResult
	for _, adv := range []SwarmAdversary{
		SwarmHonestFleet, SwarmAbsentMember, SwarmColluder, SwarmDirtyMember, SwarmLiarMember,
	} {
		r, err := RunSwarmCell(adv, n, fanout)
		if err != nil {
			return nil, fmt.Errorf("swarm: cell %v: %w", adv, err)
		}
		out = append(out, r)
	}
	return out, nil
}
