package swarm

import (
	"testing"

	"proverattest/internal/protocol"
)

// The swarm hot paths carry the same zero-allocation contract as the
// 1:1 frame codecs: the per-hop aggregate fold models firmware with no
// allocator, and the verifier's aggregate check runs once per round per
// fleet on the daemon's hot path.

// TestNodeFoldZeroAllocs pins the full per-hop round — gate + own tag +
// two child folds + finish — at zero allocations per round.
func TestNodeFoldZeroAllocs(t *testing.T) {
	p := testParams(7, 2)
	sk := protocol.DeriveSwarmKey(p.Master)
	key := p.deviceKey(0)
	node := NewNode(0, key[:], sk[:], p.Golden, 7)

	// Requests are pre-signed (node freshness demands a new nonce per
	// round); the child frame is reused with its nonce rewritten — the
	// fold is deliberately blind to child content.
	const rounds = 1100
	reqs := make([]*protocol.SwarmReq, rounds)
	for i := range reqs {
		reqs[i] = &protocol.SwarmReq{Nonce: uint64(i + 1), Root: 0}
		reqs[i].Sign(sk[:])
	}
	child := &protocol.SwarmResp{Root: 1, Depth: 1, Bitmap: []byte{0x0A}}
	for i := range child.Aggregate {
		child.Aggregate[i] = byte(i)
	}
	out := &protocol.SwarmResp{Bitmap: make([]byte, 0, 8)}

	next := 0
	round := func() {
		req := reqs[next]
		next++
		if err := node.Begin(req); err != nil {
			t.Fatalf("round %d: %v", next, err)
		}
		child.Nonce = req.Nonce
		if err := node.AddChild(child); err != nil {
			t.Fatal(err)
		}
		if err := node.AddChild(child); err != nil {
			t.Fatal(err)
		}
		if err := node.FinishInto(out); err != nil {
			t.Fatal(err)
		}
	}
	round() // warm scratch growth
	if n := testing.AllocsPerRun(1000, round); n != 0 {
		t.Fatalf("per-hop fold allocates %v/round, want 0", n)
	}
}

// TestVerifierCheckZeroAllocs pins the aggregate accept path — echo
// checks, bitmap structure pass, full expected-aggregate recomputation,
// constant-time compare — at zero allocations per round.
func TestVerifierCheckZeroAllocs(t *testing.T) {
	mesh, v := newPair(t, 31, 2)
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if err := v.Check(req, resp); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("aggregate check allocates %v/round, want 0", n)
	}
}

// TestVerifierCheckRejectZeroAllocs: the adversary picks how often the
// reject branches run, so they must be as clean as the accept path.
func TestVerifierCheckRejectZeroAllocs(t *testing.T) {
	mesh, v := newPair(t, 31, 2)
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatal(err)
	}
	bad := *resp
	bad.Bitmap = append([]byte(nil), resp.Bitmap...)
	bad.Aggregate[0] ^= 1
	if n := testing.AllocsPerRun(1000, func() {
		if err := v.Check(req, &bad); err != ErrSwarmMismatch {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("mismatch reject allocates %v/round, want 0", n)
	}
	stale := *resp
	stale.Bitmap = bad.Bitmap
	stale.Nonce++
	if n := testing.AllocsPerRun(1000, func() {
		if err := v.Check(req, &stale); err != ErrSwarmUnsolicited {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("unsolicited reject allocates %v/round, want 0", n)
	}
}
