package swarm

import (
	"fmt"
	"time"

	"proverattest/internal/protocol"
)

// The direct-vs-swarm crossover: at what fleet size does aggregate
// attestation beat N direct 1:1 rounds on the verifier? Messages are
// counted exactly; verifier-side compute is measured wall-clock over the
// real primitives, because the asymptotics hide a constant — the swarm
// check replaces N golden-image MACs (each over the whole measured
// region) with N small fixed-size MACs over memoized digests, so compute
// crosses over long before the message count does on large images.

// CrossoverPoint is one fleet size in the sweep.
type CrossoverPoint struct {
	N     int `json:"n"`
	Depth int `json:"tree_depth"`

	// Verifier-side frames for one full-fleet round.
	DirectVerifierMsgs int `json:"direct_verifier_msgs"` // 2N
	SwarmVerifierMsgs  int `json:"swarm_verifier_msgs"`  // 2
	// Frames crossing tree edges (the fabric pays these, not the
	// verifier's uplink).
	SwarmTreeMsgs int `json:"swarm_tree_msgs"`

	// Measured verifier-side compute per full-fleet round.
	DirectVerifyUS float64 `json:"direct_verify_us"`
	SwarmVerifyUS  float64 `json:"swarm_verify_us"`

	MsgReduction float64 `json:"msg_reduction"` // direct / swarm verifier msgs
}

// CrossoverReport is the sweep outcome.
type CrossoverReport struct {
	Fanout  int              `json:"fanout"`
	MemSize int              `json:"mem_size"`
	Points  []CrossoverPoint `json:"points"`
	// ComputeCrossoverN is the smallest swept fleet size where the
	// swarm verifier round costs less CPU than N direct verifications
	// (the message crossover is N=1: 2 frames beat 2N at any N>1).
	ComputeCrossoverN int `json:"compute_crossover_n"`
}

// RunCrossover sweeps fleet sizes, measuring one full-fleet round per
// point both ways on real primitives.
func RunCrossover(sizes []int, fanout, memSize int) (CrossoverReport, error) {
	rep := CrossoverReport{Fanout: fanout, MemSize: memSize, ComputeCrossoverN: -1}
	master := []byte("swarm-crossover-master")
	golden := make([]byte, memSize)
	for i := range golden {
		golden[i] = byte(i * 131)
	}
	for _, n := range sizes {
		p := Params{Master: master, IDs: FleetIDs(n), Golden: golden, Fanout: fanout}
		mesh, err := NewMesh(p)
		if err != nil {
			return rep, err
		}
		v, err := NewVerifier(p)
		if err != nil {
			return rep, err
		}
		root, _ := mesh.Topo.Root()

		// Warm the mesh (first round full-measures every member) and the
		// verifier scratch.
		req := v.NewRequest(root, false)
		var resp protocol.SwarmResp
		if err := mesh.Collect(req, &resp); err != nil {
			return rep, err
		}
		if err := v.Check(req, &resp); err != nil {
			return rep, fmt.Errorf("swarm: crossover warm round n=%d: %w", n, err)
		}

		pt := CrossoverPoint{
			N:                  n,
			Depth:              mesh.Topo.Height(),
			DirectVerifierMsgs: 2 * n,
			SwarmVerifierMsgs:  2,
		}

		// Swarm: steady-state rounds over the fabric, timing only the
		// verifier's share (NewRequest + Check) — the fabric's fold time
		// is prover energy, not verifier load.
		const iters = 16
		mesh.TreeMessages = 0
		verifierOnly := time.Duration(0)
		for it := 0; it < iters; it++ {
			t0 := time.Now()
			req := v.NewRequest(root, false)
			reqDone := time.Since(t0)
			if err := mesh.Collect(req, &resp); err != nil {
				return rep, err
			}
			t1 := time.Now()
			if err := v.Check(req, &resp); err != nil {
				return rep, fmt.Errorf("swarm: crossover round n=%d: %w", n, err)
			}
			verifierOnly += reqDone + time.Since(t1)
		}
		pt.SwarmVerifyUS = float64(verifierOnly.Microseconds()) / iters
		pt.SwarmTreeMsgs = int(mesh.TreeMessages) / iters

		// Direct baseline: per device, the verifier signs one request
		// header and recomputes the golden-image response MAC — the
		// 1:1 protocol's verifier work, N times per fleet round. The
		// image MAC cannot be memoized across devices or rounds: it is
		// keyed per device and bound to the fresh request.
		reqHdr := make([]byte, 34)
		var tag [20]byte
		start := time.Now()
		for it := 0; it < iters; it++ {
			for d := 0; d < n; d++ {
				mac := v.macs[d]
				mac.Reset()
				mac.Write(reqHdr)
				mac.SumInto(&tag) // request tag
				mac.Reset()
				mac.Write(reqHdr)
				mac.Write(golden)
				mac.SumInto(&tag) // expected response MAC over the image
			}
		}
		pt.DirectVerifyUS = float64(time.Since(start).Microseconds()) / iters

		pt.MsgReduction = float64(pt.DirectVerifierMsgs) / float64(pt.SwarmVerifierMsgs)
		if rep.ComputeCrossoverN < 0 && pt.SwarmVerifyUS < pt.DirectVerifyUS {
			rep.ComputeCrossoverN = n
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
