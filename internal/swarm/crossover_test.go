package swarm

import "testing"

// TestCrossover: the message story is exact (2 verifier frames vs 2N)
// and the measured verifier compute must cross over within the sweep —
// the aggregate check does N small fixed-size MACs where the direct
// baseline does N golden-image MACs.
func TestCrossover(t *testing.T) {
	rep, err := RunCrossover([]int{2, 4, 16, 64}, 2, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for _, pt := range rep.Points {
		t.Logf("n=%3d depth=%d verifier msgs %d→%d (%.0fx) verify %7.1fµs→%7.1fµs tree msgs %d",
			pt.N, pt.Depth, pt.DirectVerifierMsgs, pt.SwarmVerifierMsgs, pt.MsgReduction,
			pt.DirectVerifyUS, pt.SwarmVerifyUS, pt.SwarmTreeMsgs)
		if pt.SwarmVerifierMsgs != 2 || pt.DirectVerifierMsgs != 2*pt.N {
			t.Fatalf("message counts wrong at n=%d: %+v", pt.N, pt)
		}
		if pt.SwarmTreeMsgs != 2*(pt.N-1) {
			t.Fatalf("tree messages = %d at n=%d, want %d", pt.SwarmTreeMsgs, pt.N, 2*(pt.N-1))
		}
	}
	if rep.ComputeCrossoverN < 0 {
		t.Fatalf("verifier compute never crossed over: %+v", rep.Points)
	}
	last := rep.Points[len(rep.Points)-1]
	if last.MsgReduction < 10 {
		t.Fatalf("message reduction at n=%d is %.1fx, want ≥10x", last.N, last.MsgReduction)
	}
}
