package swarm

import (
	"fmt"

	"proverattest/internal/channel"
	"proverattest/internal/core"
	"proverattest/internal/protocol"
	"proverattest/internal/sim"
)

// FleetSwarm drives swarm rounds over a core.Fleet on the simulated
// timeline: every hop is a kernel event with link latency, every node is
// a real anchor job on its simulated MCU (gate → own tag → fold →
// respond, energy-metered), and absent members surface through child
// timeouts exactly as they would over a radio. The verifier↔subtree-root
// leg runs over the member's channel; inner tree edges are modelled as
// direct kernel events with the same one-way latency.
type FleetSwarm struct {
	F *core.Fleet
	V *Verifier

	// Hop is the one-way latency of a tree edge (default: 1 ms).
	Hop sim.Duration
	// ChildTimeout is the per-level wait budget: a node at subtree
	// height h waits ChildTimeout·(h+1) for its children before folding
	// what arrived. The default (2 s) clears a full 512 KB measurement —
	// 754 ms on the 24 MHz reference core — per level with room for
	// link latency.
	ChildTimeout sim.Duration

	// Absent members never answer (offline / partitioned).
	Absent map[int]bool
	// ForgeChildren marks colluding subtree roots (see Mesh).
	ForgeChildren map[int]bool

	// TreeMessages counts frames crossing inner tree edges;
	// VerifierMessages counts frames on the verifier↔root leg — the
	// quantity swarm aggregation is supposed to crush from 2N to 2.
	TreeMessages     uint64
	VerifierMessages uint64
}

// NewFleetSwarm wires a swarm driver over a fleet built with
// FleetConfig.Fanout > 0.
func NewFleetSwarm(f *core.Fleet) (*FleetSwarm, error) {
	if f.SwarmKey == nil {
		return nil, fmt.Errorf("swarm: fleet not provisioned for swarm (FleetConfig.Fanout = 0)")
	}
	ids := make([]string, len(f.Members))
	for i := range ids {
		ids[i] = core.FleetDeviceID(i)
	}
	v, err := NewVerifier(Params{
		Master: core.FleetMasterSecret,
		IDs:    ids,
		Golden: f.Members[0].Dev.GoldenRAM(),
		Fanout: f.Topology.Fanout(),
	})
	if err != nil {
		return nil, err
	}
	// Adopt the fleet's topology (it may be seeded; the verifier rebuilt
	// one with seed 0 above).
	v.topo = f.Topology
	return &FleetSwarm{
		F:             f,
		V:             v,
		Hop:           sim.Millisecond,
		ChildTimeout:  2 * sim.Second,
		Absent:        make(map[int]bool),
		ForgeChildren: make(map[int]bool),
	}, nil
}

// RunRound runs one full aggregation round from the tree root and checks
// the aggregate: request down the tree, aggregate back up, one
// verifier-side frame each way. Returns the verifier's verdict
// (nil / ErrSwarmMissing / ErrSwarmMismatch / ...); the response is nil
// when the root never answered.
func (fs *FleetSwarm) RunRound() (*protocol.SwarmResp, error) {
	root, ok := fs.V.Topology().Root()
	if !ok {
		return nil, fmt.Errorf("swarm: empty topology")
	}
	return fs.Query(fs.V.NewRequest(root, false))
}

// Query delivers one signed request to its subtree root over the
// member's channel, drives the aggregation on the kernel, and checks the
// result — also the bisection QueryFunc for Localize.
func (fs *FleetSwarm) Query(req *protocol.SwarmReq) (*protocol.SwarmResp, error) {
	member := int(req.Root)
	if member < 0 || member >= len(fs.F.Members) {
		return nil, fmt.Errorf("swarm: no member %d", member)
	}
	s := fs.F.Members[member]

	var got *protocol.SwarmResp
	s.SwarmReqHandler = func(payload []byte, reply func([]byte)) {
		fs.collect(member, payload, req.OwnOnly, func(out []byte) {
			reply(out)
		})
	}
	s.SwarmRespHandler = func(payload []byte) {
		resp := &protocol.SwarmResp{}
		if protocol.DecodeSwarmRespInto(payload, resp) == nil {
			fs.VerifierMessages++
			got = resp
		}
	}
	defer func() {
		s.SwarmReqHandler = nil
		s.SwarmRespHandler = nil
	}()

	fs.VerifierMessages++
	s.C.Send(channel.Verifier, channel.Prover, req.Encode())

	// Worst case: every level burns its full (height-scaled) timeout
	// budget plus propagation; one extra second absorbs MCU compute.
	height := sim.Duration(fs.V.Topology().Height() + 2)
	deadline := fs.F.K.Now() + height*height*fs.ChildTimeout + height*4*fs.Hop + sim.Second
	fs.F.RunUntil(deadline)

	if got == nil {
		return nil, nil // timeout — the subtree root is unreachable
	}
	return got, nil
}

// CheckedRound is RunRound plus the aggregate check in one call.
func (fs *FleetSwarm) CheckedRound() (*protocol.SwarmResp, error) {
	root, _ := fs.V.Topology().Root()
	req := fs.V.NewRequest(root, false)
	resp, err := fs.Query(req)
	if err != nil {
		return nil, err
	}
	if resp == nil {
		return nil, ErrSwarmUnsolicited
	}
	return resp, fs.V.Check(req, resp)
}

// collect runs the aggregation protocol at member: gate + own tag via
// the anchor, then fan the request to the children, fold their responses
// in child order, and respond upward. Everything is kernel events — the
// recursion returns immediately and done fires when the subtree's
// aggregate frame is ready.
func (fs *FleetSwarm) collect(member int, frame []byte, ownOnly bool, done func([]byte)) {
	if fs.Absent[member] {
		return // never answers; the parent's timeout handles it
	}
	s := fs.F.Members[member]
	a := s.Dev.A
	a.HandleSwarmBegin(frame, func(err error) {
		if err != nil {
			return
		}
		kids := fs.V.Topology().Children(member, nil)
		if ownOnly || len(kids) == 0 {
			a.SwarmRespond(done)
			return
		}
		if fs.ForgeChildren[member] {
			fs.forgeAndRespond(member, kids, done)
			return
		}
		responses := make([][]byte, len(kids))
		outstanding := len(kids)
		finished := false
		finish := func() {
			if finished {
				return
			}
			finished = true
			var feed func(i int)
			feed = func(i int) {
				if i == len(responses) {
					a.SwarmRespond(done)
					return
				}
				if responses[i] == nil {
					feed(i + 1)
					return
				}
				a.SwarmFoldChild(responses[i], func(error) { feed(i + 1) })
			}
			feed(0)
		}
		for i, c := range kids {
			i, c := i, c
			fs.TreeMessages++ // request down the edge
			fs.F.K.After(fs.Hop, func() {
				fs.collect(c, frame, false, func(out []byte) {
					fs.TreeMessages++ // response up the edge
					fs.F.K.After(fs.Hop, func() {
						if finished {
							return
						}
						responses[i] = out
						outstanding--
						if outstanding == 0 {
							finish()
						}
					})
				})
			})
		}
		// Budget scales with the member's subtree height so ancestors
		// outlast their descendants' own timeouts.
		h := fs.V.Topology().Height() - fs.V.Topology().Depth(member)
		fs.F.K.After(fs.ChildTimeout*sim.Duration(h+1), func() { finish() })
	})
}

// forgeAndRespond is the colluding-subtree-root adversary on the sim
// fleet: fabricate child frames (full presence bits, made-up tags) and
// feed them through the anchor's fold, never contacting the children.
func (fs *FleetSwarm) forgeAndRespond(member int, kids []int, done func([]byte)) {
	a := fs.F.Members[member].Dev.A
	frames := make([][]byte, 0, len(kids))
	for _, c := range kids {
		fake := protocol.SwarmResp{
			Root:  uint16(c),
			Nonce: fs.V.nonce, // colluder echoes the live round's nonce
		}
		for i := range fake.Aggregate {
			fake.Aggregate[i] = byte(c*31 + i*7)
		}
		fake.Bitmap = make([]byte, protocol.SwarmBitmapLen(len(fs.F.Members)))
		fs.markSubtree(c, fake.Bitmap)
		frames = append(frames, fake.Encode())
	}
	var feed func(i int)
	feed = func(i int) {
		if i == len(frames) {
			a.SwarmRespond(done)
			return
		}
		a.SwarmFoldChild(frames[i], func(error) { feed(i + 1) })
	}
	feed(0)
}

func (fs *FleetSwarm) markSubtree(root int, bm []byte) {
	topo := fs.V.Topology()
	rootPos := topo.Pos(root)
	if rootPos < 0 {
		return
	}
	fanout := topo.Fanout()
	for p := rootPos; p < topo.Len(); p++ {
		q := p
		for q > rootPos {
			q = (q - 1) / fanout
		}
		if q == rootPos {
			protocol.SetSwarmBit(bm, topo.MemberAt(p))
		}
	}
}
