package swarm

import (
	"testing"

	"proverattest/internal/anchor"
	"proverattest/internal/core"
	"proverattest/internal/protocol"
)

func newTestFleetSwarm(t *testing.T, n, fanout int) *FleetSwarm {
	t.Helper()
	fleet, err := core.NewFleet(core.FleetConfig{
		Provers: n,
		Fanout:  fanout,
		Scenario: core.ScenarioConfig{
			Freshness:  protocol.FreshCounter,
			Auth:       protocol.AuthHMACSHA1,
			Protection: anchor.FullProtection(),
			Monitor:    true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFleetSwarm(fleet)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestFleetSwarmCleanRound: a full aggregation round over real anchors
// on the sim kernel verifies, costs exactly two verifier-side frames,
// and the second round rides every member's stored digest (the RATA
// memo) — one measurement per member total.
func TestFleetSwarmCleanRound(t *testing.T) {
	const n = 16
	fs := newTestFleetSwarm(t, n, 2)

	resp, err := fs.CheckedRound()
	if err != nil {
		t.Fatalf("first round: %v", err)
	}
	if resp == nil {
		t.Fatal("no response")
	}
	first := fs.VerifierMessages
	if first != 2 {
		t.Fatalf("verifier messages = %d, want 2", first)
	}

	if _, err := fs.CheckedRound(); err != nil {
		t.Fatalf("second round: %v", err)
	}
	if got := fs.VerifierMessages - first; got != 2 {
		t.Fatalf("second-round verifier messages = %d, want 2", got)
	}
	var measurements, fast uint64
	for _, m := range fs.F.Members {
		measurements += m.Dev.A.Stats.Measurements
		fast += m.Dev.A.Stats.FastResponses
	}
	if measurements != n {
		t.Fatalf("fleet measured %d times over two rounds, want %d", measurements, n)
	}
	if fast != n {
		t.Fatalf("fast own-tags = %d, want %d", fast, n)
	}
	// Tree traffic: 2 frames per edge per round, n-1 edges.
	if want := uint64(2 * 2 * (n - 1)); fs.TreeMessages != want {
		t.Fatalf("tree messages = %d, want %d", fs.TreeMessages, want)
	}
}

// TestFleetSwarmChargesEnergy: aggregation is not free for the provers —
// every member's anchor pays gate + tag cycles on its own meter.
func TestFleetSwarmChargesEnergy(t *testing.T) {
	fs := newTestFleetSwarm(t, 4, 2)
	if _, err := fs.CheckedRound(); err != nil {
		t.Fatal(err)
	}
	for i, m := range fs.F.Members {
		if m.Dev.ActiveEnergyJoules() <= 0 {
			t.Fatalf("member %d spent no energy on the swarm round", i)
		}
	}
}

// TestSwarmMatrix: every adversary cell detects, localizes to the right
// member with the right cause, and recovers per its contract; the honest
// cell stays clean at two verifier frames per round.
func TestSwarmMatrix(t *testing.T) {
	results, err := RunSwarmMatrix(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("matrix has %d cells, want 5", len(results))
	}
	for _, r := range results {
		t.Logf("%-8s target=%2d detected=%-5v localized=%-5v probes=%d verdict=%q recovered=%v",
			r.Adversary, r.Target, r.Detected, r.Localized, r.BisectProbes, r.Verdict, r.RecoveredClean)
		if r.Adversary == SwarmHonestFleet {
			if r.Detected {
				t.Fatalf("honest fleet flagged: %q", r.Verdict)
			}
			if r.CleanVerifierMsg != 2 {
				t.Fatalf("honest clean round took %d verifier messages", r.CleanVerifierMsg)
			}
			continue
		}
		if !r.Detected {
			t.Fatalf("%v not detected", r.Adversary)
		}
		if !r.Localized {
			t.Fatalf("%v not localized to member %d: %v", r.Adversary, r.Target, r.Findings)
		}
		if !r.RecoveredClean {
			t.Fatalf("%v did not recover clean", r.Adversary)
		}
		if r.BisectProbes == 0 || r.BisectProbes >= uint64(r.Provers) {
			t.Fatalf("%v bisection probes = %d (fleet %d)", r.Adversary, r.BisectProbes, r.Provers)
		}
	}
}
