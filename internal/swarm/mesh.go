package swarm

import (
	"errors"
	"fmt"

	"proverattest/internal/core"
	"proverattest/internal/protocol"
)

// Mesh is an in-process swarm fleet: host Nodes wired by the shared
// topology, with per-edge message counting. It is the loadgen's device
// fabric (only the tree root ever talks to the daemon socket) and the
// crossover harness's prover side. Adversarial members are modelled
// in-mesh: Absent members never answer, ForgeChildren members fabricate
// their children's evidence instead of querying them.
type Mesh struct {
	Topo  *core.Topology
	Nodes []*Node

	// Absent members drop requests (offline / partitioned).
	Absent map[int]bool
	// ForgeChildren marks colluding subtree roots: instead of forwarding
	// the request they invent presence bits and aggregate tags for their
	// entire subtrees. Detection must localize the colluder, not the
	// framed children.
	ForgeChildren map[int]bool

	// TreeMessages counts frames crossing tree edges (request down +
	// response up per traversed edge); the verifier-side pair is counted
	// by the coordinator, not here.
	TreeMessages uint64

	fleet int
}

var errMeshAbsent = errors.New("swarm: member absent")

// NewMesh boots one Node per member, all on the golden image.
func NewMesh(p Params) (*Mesh, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(p.IDs)
	sk := protocol.DeriveSwarmKey(p.Master)
	m := &Mesh{
		Topo:          core.NewTopology(n, p.Fanout, p.Seed),
		Nodes:         make([]*Node, n),
		Absent:        make(map[int]bool),
		ForgeChildren: make(map[int]bool),
		fleet:         n,
	}
	for i := range m.Nodes {
		key := p.deviceKey(i)
		m.Nodes[i] = NewNode(i, key[:], sk[:], p.Golden, n)
	}
	return m, nil
}

// Collect runs one aggregation round over the subtree req addresses,
// writing the root's aggregate into resp. The recursion is depth-first
// in child order — exactly the fold order the verifier recomputes.
func (m *Mesh) Collect(req *protocol.SwarmReq, resp *protocol.SwarmResp) error {
	return m.collect(int(req.Root), req, resp)
}

// Query adapts Collect to the verifier's bisection QueryFunc.
func (m *Mesh) Query(req *protocol.SwarmReq) (*protocol.SwarmResp, error) {
	resp := &protocol.SwarmResp{}
	if err := m.Collect(req, resp); err != nil {
		if errors.Is(err, errMeshAbsent) {
			return nil, nil // timeout: no answer
		}
		return nil, err
	}
	return resp, nil
}

func (m *Mesh) collect(member int, req *protocol.SwarmReq, resp *protocol.SwarmResp) error {
	if member < 0 || member >= len(m.Nodes) {
		return fmt.Errorf("swarm: no member %d", member)
	}
	if m.Absent[member] {
		return errMeshAbsent
	}
	node := m.Nodes[member]
	if err := node.Begin(req); err != nil {
		return err
	}
	if !req.OwnOnly {
		kids := m.Topo.Children(member, nil)
		switch {
		case m.ForgeChildren[member]:
			m.forgeChildren(node, kids)
		default:
			for _, c := range kids {
				var child protocol.SwarmResp
				m.TreeMessages++ // request down the edge
				if err := m.collect(c, req, &child); err != nil {
					continue // absent subtree: presence bits stay clear
				}
				m.TreeMessages++ // response up the edge
				if err := node.AddChild(&child); err != nil {
					return err
				}
			}
		}
	}
	return node.FinishInto(resp)
}

// forgeChildren is the colluding-subtree-root adversary: the node holds
// only its own key, so the best it can do is mark its children's
// subtrees present and fold made-up aggregate tags. The presence bits
// are free to fake; the per-device keyed tags are not.
func (m *Mesh) forgeChildren(node *Node, kids []int) {
	for _, c := range kids {
		fake := protocol.SwarmResp{
			Root:  uint16(c),
			Nonce: node.nonce,
			Depth: 0,
		}
		for i := range fake.Aggregate {
			fake.Aggregate[i] = byte(c*31 + i*7)
		}
		fake.Bitmap = make([]byte, protocol.SwarmBitmapLen(m.fleet))
		m.markSubtree(c, fake.Bitmap)
		node.AddChild(&fake) //nolint:errcheck // forger ignores its own errors
	}
}

// markSubtree sets the presence bit of every member in root's subtree.
func (m *Mesh) markSubtree(root int, bm []byte) {
	rootPos := m.Topo.Pos(root)
	if rootPos < 0 {
		return
	}
	fanout := m.Topo.Fanout()
	for p := rootPos; p < m.Topo.Len(); p++ {
		q := p
		for q > rootPos {
			q = (q - 1) / fanout
		}
		if q == rootPos {
			protocol.SetSwarmBit(bm, m.Topo.MemberAt(p))
		}
	}
}
