package swarm

import (
	"errors"

	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/protocol"
)

// Node is a host-level swarm prover: the same three-phase round state
// machine as the anchor's HandleSwarmBegin / SwarmFoldChild /
// SwarmRespond, minus the simulated MCU underneath. The loadgen uses a
// Mesh of Nodes as its in-process device fabric; the crossover harness
// times rounds over them. Begin/AddChild/FinishInto are allocation-free
// after warm-up — the per-hop aggregate fold is a hot path on hardware
// that has no allocator at all, and the host model keeps that honest.
type Node struct {
	// Index is the member's tree index (bitmap bit, own-tag binding).
	Index uint16

	mem   []byte
	mac   *hmac.MAC // keyed K_Attest
	gate  *hmac.MAC // keyed K_Swarm
	fleet int

	lastNonce uint64

	// RATA-style measurement memo: digest + the monitor epoch it was
	// measured under. clean models the write-monitor latch (armed, no
	// stores since the last measurement); epoch models the hardware
	// rearm counter.
	epoch  uint32
	digest [sha1.Size]byte
	have   bool
	clean  bool

	// Pending round.
	active  bool
	ownOnly bool
	nonce   uint64
	own     [sha1.Size]byte
	folded  int
	depth   uint8
	bitmap  []byte
	signed  []byte
	gateTag [sha1.Size]byte

	Stats NodeStats
}

// NodeStats counts a node's round outcomes.
type NodeStats struct {
	Rounds       uint64 // accepted Begin calls
	Measurements uint64 // full memory measurements
	FastOwn      uint64 // own tags served from the stored digest
	Rejected     uint64 // gate rejections (auth, freshness, framing)
}

// Static node errors: the reject paths are adversary-driven.
var (
	ErrNodeAuth      = errors.New("swarm: request gate tag mismatch")
	ErrNodeFreshness = errors.New("swarm: request nonce not fresh")
	ErrNodeNoRound   = errors.New("swarm: no round in flight")
	ErrNodeOwnOnly   = errors.New("swarm: own-only round accepts no children")
	ErrNodeNonce     = errors.New("swarm: child response nonce mismatch")
)

// NewNode builds member index of an n-member swarm. key is the member's
// K_Attest, swarmKey the fleet-wide gate key, mem the member's attested
// memory (copied, then owned and mutable via Mem).
func NewNode(index int, key, swarmKey, mem []byte, fleet int) *Node {
	return &Node{
		Index:  uint16(index),
		mem:    append([]byte(nil), mem...),
		mac:    hmac.NewSHA1(key),
		gate:   hmac.NewSHA1(swarmKey),
		fleet:  fleet,
		bitmap: make([]byte, protocol.SwarmBitmapLen(fleet)),
		signed: make([]byte, 0, 32),
	}
}

// Mem exposes the node's attested memory. Callers that mutate it must
// also call Taint (honest hardware's write monitor would) or LieRearm
// (the liar adversary's unprotected rearm).
func (n *Node) Mem() []byte { return n.mem }

// Taint models the write-monitor latch firing: the next Begin performs a
// full re-measurement under a fresh epoch.
func (n *Node) Taint() { n.clean = false }

// LieRearm models application code abusing an unprotected rearm
// register: the latch clears and the epoch advances, but no measurement
// happens — the stored digest goes stale. The epoch binding in the own
// tag is what surfaces this at the verifier.
func (n *Node) LieRearm() {
	n.clean = true
	n.epoch++
}

// Epoch reports the node's current monitor epoch (for verifier resync).
func (n *Node) Epoch() uint32 { return n.epoch }

// Begin gates req and computes the node's own tag, opening a round.
// Allocation-free after the first call.
func (n *Node) Begin(req *protocol.SwarmReq) error {
	n.signed = req.AppendSignedBytes(n.signed[:0])
	n.gate.Reset()
	n.gate.Write(n.signed)
	n.gate.SumInto(&n.gateTag)
	if !hmac.Equal(n.gateTag[:], req.Tag) {
		n.Stats.Rejected++
		return ErrNodeAuth
	}
	if req.Nonce <= n.lastNonce {
		n.Stats.Rejected++
		return ErrNodeFreshness
	}
	n.lastNonce = req.Nonce

	// Own digest: stored memo while clean under the current epoch,
	// full measurement otherwise (rearm first — epoch advances, so a
	// racing store re-dirties the fresh epoch, never the vouched one).
	if n.clean && n.have {
		n.Stats.FastOwn++
	} else {
		n.epoch++
		n.clean = true
		protocol.SwarmMemDigestInto(n.mac, n.mem, &n.digest)
		n.have = true
		n.Stats.Measurements++
	}
	protocol.SwarmOwnTagInto(n.mac, n.signed, n.Index, n.epoch, &n.digest, &n.own)

	for i := range n.bitmap {
		n.bitmap[i] = 0
	}
	protocol.SetSwarmBit(n.bitmap, int(n.Index))
	n.active = true
	n.ownOnly = req.OwnOnly
	n.nonce = req.Nonce
	n.folded = 0
	n.depth = 0
	n.Stats.Rounds++
	return nil
}

// AddChild folds one child's aggregate into the pending round. Children
// must arrive in child order. Allocation-free.
func (n *Node) AddChild(resp *protocol.SwarmResp) error {
	if !n.active {
		return ErrNodeNoRound
	}
	if n.ownOnly {
		return ErrNodeOwnOnly
	}
	if resp.Nonce != n.nonce {
		return ErrNodeNonce
	}
	if n.folded == 0 {
		protocol.SwarmFoldStart(n.mac, &n.own)
	}
	protocol.SwarmFoldChild(n.mac, &resp.Aggregate)
	for i := 0; i < len(n.bitmap) && i < len(resp.Bitmap); i++ {
		n.bitmap[i] |= resp.Bitmap[i]
	}
	if d := resp.Depth + 1; d > n.depth {
		n.depth = d
	}
	n.folded++
	return nil
}

// FinishInto closes the round and writes the aggregate response into
// resp (bitmap appended into resp.Bitmap[:0]). Allocation-free once
// resp's bitmap has capacity.
func (n *Node) FinishInto(resp *protocol.SwarmResp) error {
	if !n.active {
		return ErrNodeNoRound
	}
	if n.folded == 0 {
		resp.Aggregate = n.own
	} else {
		protocol.SwarmFoldFinish(n.mac, &resp.Aggregate)
	}
	resp.Depth = n.depth
	resp.Root = n.Index
	resp.Nonce = n.nonce
	resp.Bitmap = append(resp.Bitmap[:0], n.bitmap...)
	n.active = false
	return nil
}
