// Package swarm implements collective (swarm) attestation over the
// fleet's spanning tree, in the SEDA family: provers aggregate keyed
// evidence up a tree so the verifier checks one aggregate frame instead
// of N responses — O(log n) round latency and O(1) verifier-side
// messages in the clean case, with bisection down the tree to localize
// the offending subtree on mismatch.
//
// The pieces:
//
//   - Node: a host-level prover (the loadgen's device mesh) holding the
//     RATA-style measurement memo (epoch + stored digest, re-measured
//     only when dirty) and the per-hop aggregate fold. The simulated-MCU
//     counterpart lives in internal/anchor (HandleSwarmBegin /
//     SwarmFoldChild / SwarmRespond).
//   - Verifier: recomputes the expected aggregate from per-device
//     verified state in one zero-allocation pass, and drives bisection.
//   - Mesh: an in-process tree of Nodes with message counting — the
//     loadgen's device fabric and the crossover harness.
//   - FleetSwarm: the discrete-event driver over core.Fleet, running
//     rounds against real anchors on the sim kernel (hop latency,
//     absent-member timeouts, the adversary matrix).
//
// Tag derivation is protocol's swarm-mem-v1 / swarm-own-v1 /
// swarm-fold-v1 chain; see internal/protocol/swarm.go and PROTOCOL.md
// "Swarm aggregation".
package swarm

import (
	"fmt"

	"proverattest/internal/crypto/sha1"
	"proverattest/internal/protocol"
)

// Params describes one swarm deployment: the key material and tree shape
// shared by provers and verifier.
type Params struct {
	// Master is the deployment master secret: per-device keys derive via
	// protocol.DeriveDeviceKey(Master, IDs[i]), the broadcast gate key
	// via protocol.DeriveSwarmKey(Master).
	Master []byte
	// IDs are the member device identifiers; tree index = slice index.
	IDs []string
	// Golden is the attested-memory image every member boots (uniform
	// fleet, as in the paper's deployment model).
	Golden []byte
	// Fanout is the tree arity (<=0 selects core.DefaultFanout).
	Fanout int
	// Seed permutes members across tree positions (0 = identity).
	Seed int64
}

func (p *Params) validate() error {
	if len(p.IDs) == 0 {
		return fmt.Errorf("swarm: no members")
	}
	if len(p.IDs) > 1<<16 {
		return fmt.Errorf("swarm: %d members exceeds the uint16 index space", len(p.IDs))
	}
	if len(p.Master) == 0 {
		return fmt.Errorf("swarm: empty master secret")
	}
	return nil
}

// FleetIDs returns the canonical ID list for an n-member fleet
// (core.FleetDeviceID ordering).
func FleetIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("prover-%04d", i)
	}
	return ids
}

// deviceKey derives member i's K_Attest.
func (p *Params) deviceKey(i int) [sha1.Size]byte {
	return protocol.DeriveDeviceKey(p.Master, p.IDs[i])
}
