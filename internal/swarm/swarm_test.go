package swarm

import (
	"testing"

	"proverattest/internal/protocol"
)

func testParams(n, fanout int) Params {
	golden := make([]byte, 4096)
	for i := range golden {
		golden[i] = byte(i * 37)
	}
	return Params{
		Master: []byte("swarm-test-master-secret"),
		IDs:    FleetIDs(n),
		Golden: golden,
		Fanout: fanout,
	}
}

func newPair(t *testing.T, n, fanout int) (*Mesh, *Verifier) {
	t.Helper()
	p := testParams(n, fanout)
	mesh, err := NewMesh(p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(p)
	if err != nil {
		t.Fatal(err)
	}
	return mesh, v
}

func runRound(t *testing.T, mesh *Mesh, v *Verifier) (*protocol.SwarmReq, *protocol.SwarmResp) {
	t.Helper()
	root, ok := mesh.Topo.Root()
	if !ok {
		t.Fatal("no root")
	}
	req := v.NewRequest(root, false)
	resp := &protocol.SwarmResp{}
	if err := mesh.Collect(req, resp); err != nil {
		t.Fatalf("collect: %v", err)
	}
	return req, resp
}

// TestSwarmCleanRoundVerifies: the base contract — an honest fleet's
// aggregate verifies, and the second round rides every member's stored
// digest (no re-measurement).
func TestSwarmCleanRoundVerifies(t *testing.T) {
	for _, tc := range []struct{ n, fanout int }{
		{1, 2}, {2, 2}, {7, 2}, {16, 2}, {16, 4}, {64, 8}, {9, 3},
	} {
		mesh, v := newPair(t, tc.n, tc.fanout)
		req, resp := runRound(t, mesh, v)
		if err := v.Check(req, resp); err != nil {
			t.Fatalf("n=%d fanout=%d: clean round rejected: %v", tc.n, tc.fanout, err)
		}
		req, resp = runRound(t, mesh, v)
		if err := v.Check(req, resp); err != nil {
			t.Fatalf("n=%d fanout=%d: second round rejected: %v", tc.n, tc.fanout, err)
		}
		for i, node := range mesh.Nodes {
			if node.Stats.Measurements != 1 {
				t.Fatalf("n=%d member %d measured %d times over two rounds, want 1",
					tc.n, i, node.Stats.Measurements)
			}
		}
		if int(resp.Depth) != mesh.Topo.Height() {
			t.Fatalf("n=%d: depth %d, want tree height %d", tc.n, resp.Depth, mesh.Topo.Height())
		}
	}
}

// TestSwarmSeededTopologyVerifies: prover fold order and verifier
// recomputation agree under a permuted tree too.
func TestSwarmSeededTopologyVerifies(t *testing.T) {
	p := testParams(23, 3)
	p.Seed = 424242
	mesh, err := NewMesh(p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(p)
	if err != nil {
		t.Fatal(err)
	}
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatalf("seeded round rejected: %v", err)
	}
}

// TestSwarmReplayRejected: nodes gate on strictly increasing nonces, so
// replaying a captured request dies at the first hop.
func TestSwarmReplayRejected(t *testing.T) {
	mesh, v := newPair(t, 7, 2)
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatal(err)
	}
	if err := mesh.Collect(req, &protocol.SwarmResp{}); err != ErrNodeFreshness {
		t.Fatalf("replay accepted: %v", err)
	}
	// A forged request (bad gate tag) dies the same way.
	forged := *req
	forged.Nonce += 100
	forged.Tag = append([]byte(nil), req.Tag...)
	forged.Tag[0] ^= 1
	if err := mesh.Collect(&forged, &protocol.SwarmResp{}); err != ErrNodeAuth {
		t.Fatalf("forged request accepted: %v", err)
	}
}

// TestSwarmResponseSubstitutionRejected: swapping another round's (or
// another subtree's) response in fails the unsolicited check before any
// crypto runs.
func TestSwarmResponseSubstitutionRejected(t *testing.T) {
	mesh, v := newPair(t, 7, 2)
	req1, resp1 := runRound(t, mesh, v)
	if err := v.Check(req1, resp1); err != nil {
		t.Fatal(err)
	}
	req2, resp2 := runRound(t, mesh, v)
	if err := v.Check(req2, resp1); err != ErrSwarmUnsolicited {
		t.Fatalf("old response accepted against new request: %v", err)
	}
	if err := v.Check(req2, resp2); err != nil {
		t.Fatal(err)
	}
}

// TestSwarmBitmapStructure: structurally invalid presence bitmaps are
// rejected without an aggregate comparison — wrong width, bits outside
// the subtree, present member under an absent parent, missing sender.
func TestSwarmBitmapStructure(t *testing.T) {
	mesh, v := newPair(t, 15, 2)
	root, _ := mesh.Topo.Root()
	req, resp := runRound(t, mesh, v)

	short := *resp
	short.Bitmap = resp.Bitmap[:1]
	if err := v.Check(req, &short); err != ErrSwarmBitmap {
		t.Fatalf("short bitmap: %v", err)
	}

	kids := mesh.Topo.Children(root, nil)
	gapped := *resp
	gapped.Bitmap = append([]byte(nil), resp.Bitmap...)
	// Clear an interior member while leaving its children present: a
	// present member under an absent parent cannot happen in a real fold.
	gapped.Bitmap[kids[0]/8] &^= 1 << (kids[0] % 8)
	if err := v.Check(req, &gapped); err != ErrSwarmBitmap {
		t.Fatalf("gapped bitmap: %v", err)
	}

	noSender := *resp
	noSender.Bitmap = append([]byte(nil), resp.Bitmap...)
	noSender.Bitmap[root/8] &^= 1 << (root % 8)
	if err := v.Check(req, &noSender); err != ErrSwarmBitmap {
		t.Fatalf("senderless bitmap: %v", err)
	}
}

// TestSwarmOwnOnlyProbe: the bisection leaf probe answers with exactly
// the node's own contribution.
func TestSwarmOwnOnlyProbe(t *testing.T) {
	mesh, v := newPair(t, 15, 2)
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatal(err)
	}
	root, _ := mesh.Topo.Root()
	kids := mesh.Topo.Children(root, nil)
	probe := v.NewRequest(kids[1], true)
	presp, err := mesh.Query(probe)
	if err != nil || presp == nil {
		t.Fatalf("probe failed: %v %v", presp, err)
	}
	if err := v.Check(probe, presp); err != nil {
		t.Fatalf("own-only probe rejected: %v", err)
	}
	if presp.Depth != 0 {
		t.Fatalf("own-only depth = %d, want 0", presp.Depth)
	}
	// An own-only response claiming extra members is structurally bogus.
	bloated := *presp
	bloated.Bitmap = append([]byte(nil), presp.Bitmap...)
	protocol.SetSwarmBit(bloated.Bitmap, root)
	if err := v.Check(probe, &bloated); err != ErrSwarmBitmap {
		t.Fatalf("bloated own-only bitmap: %v", err)
	}
}

// TestSwarmAbsentMemberLocalized: an offline interior member surfaces as
// ErrSwarmMissing, bisection names it (and its stranded subtree), and
// after Remove the rebuilt tree verifies clean.
func TestSwarmAbsentMemberLocalized(t *testing.T) {
	mesh, v := newPair(t, 15, 2)
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatal(err)
	}
	root, _ := mesh.Topo.Root()
	target := mesh.Topo.Children(root, nil)[0]
	mesh.Absent[target] = true

	req, resp = runRound(t, mesh, v)
	if err := v.Check(req, resp); err != ErrSwarmMissing {
		t.Fatalf("absent member verdict: %v", err)
	}
	missing := v.AppendMissing(root, resp, nil)
	if len(missing) != 7 { // target's complete subtree in a 15/2 tree
		t.Fatalf("missing = %v, want the 7-member subtree", missing)
	}

	findings := v.Localize(root, mesh.Query)
	found := false
	for _, f := range findings {
		if f.Member == target && f.Cause == CauseAbsent {
			found = true
		}
		if f.Cause != CauseAbsent {
			t.Fatalf("unexpected cause %v for member %d", f.Cause, f.Member)
		}
	}
	if !found {
		t.Fatalf("target %d not localized: %v", target, findings)
	}

	// Member-loss rebuild: survivors re-parent deterministically and the
	// next round verifies without the lost member.
	v.Remove(target)
	mesh.Topo = v.Topology()
	req, resp = runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatalf("rebuilt tree rejected: %v", err)
	}
}

// TestSwarmColluderLocalized: a subtree root forging its children's
// evidence breaks the aggregate and bisection pins the forgery on the
// colluder — its own tag verifies, every child subtree verifies in
// isolation, only its fold is wrong.
func TestSwarmColluderLocalized(t *testing.T) {
	mesh, v := newPair(t, 15, 2)
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatal(err)
	}
	root, _ := mesh.Topo.Root()
	target := mesh.Topo.Children(root, nil)[0]
	mesh.ForgeChildren[target] = true

	req, resp = runRound(t, mesh, v)
	if err := v.Check(req, resp); err != ErrSwarmMismatch {
		t.Fatalf("colluder verdict: %v", err)
	}
	findings := v.Localize(root, mesh.Query)
	if len(findings) != 1 || findings[0].Member != target || findings[0].Cause != CauseFoldForgery {
		t.Fatalf("colluder findings = %v, want fold-forgery at %d", findings, target)
	}
}

// TestSwarmDirtyMemberLocalized: a member whose attested memory changed
// re-measures (write-monitor contract), its deviating digest breaks the
// aggregate, and bisection names it with CauseMismatch. A clean member
// is never flagged.
func TestSwarmDirtyMemberLocalized(t *testing.T) {
	mesh, v := newPair(t, 15, 2)
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatal(err)
	}
	target := 11 // a leaf
	node := mesh.Nodes[target]
	node.Mem()[100] ^= 0xFF
	node.Taint()

	req, resp = runRound(t, mesh, v)
	if err := v.Check(req, resp); err != ErrSwarmMismatch {
		t.Fatalf("dirty member verdict: %v", err)
	}
	root, _ := mesh.Topo.Root()
	findings := v.Localize(root, mesh.Query)
	if len(findings) != 1 || findings[0].Member != target || findings[0].Cause != CauseMismatch {
		t.Fatalf("dirty findings = %v, want mismatch at %d", findings, target)
	}
}

// TestSwarmLiarEpochDesync: rearming the monitor from application code
// (epoch bump, no re-measurement) desyncs the own tag's epoch binding —
// the aggregate breaks even though the stale digest still matches
// golden, and after the resync contract (observe the new epoch via a
// direct probe) rounds verify again.
func TestSwarmLiarEpochDesync(t *testing.T) {
	mesh, v := newPair(t, 7, 2)
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatal(err)
	}
	target := 5
	mesh.Nodes[target].LieRearm()

	req, resp = runRound(t, mesh, v)
	if err := v.Check(req, resp); err != ErrSwarmMismatch {
		t.Fatalf("liar verdict: %v", err)
	}
	root, _ := mesh.Topo.Root()
	findings := v.Localize(root, mesh.Query)
	if len(findings) != 1 || findings[0].Member != target || findings[0].Cause != CauseMismatch {
		t.Fatalf("liar findings = %v, want mismatch at %d", findings, target)
	}

	// Resync: a direct round tells the verifier the member's current
	// epoch; with the record updated the aggregate verifies again.
	v.SetEpoch(target, mesh.Nodes[target].Epoch())
	req, resp = runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatalf("post-resync round rejected: %v", err)
	}
}

// TestSwarmBisectionCheaperThanSweep: localizing one offender must not
// cost a full-fleet sweep — the probe count stays under n for a
// single-offender tree of any useful size.
func TestSwarmBisectionCheaperThanSweep(t *testing.T) {
	const n = 63
	mesh, v := newPair(t, n, 2)
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatal(err)
	}
	target := n - 1
	mesh.Nodes[target].Mem()[0] ^= 1
	mesh.Nodes[target].Taint()
	req, resp = runRound(t, mesh, v)
	if err := v.Check(req, resp); err != ErrSwarmMismatch {
		t.Fatal(err)
	}
	before := v.Stats.Bisections
	root, _ := mesh.Topo.Root()
	findings := v.Localize(root, mesh.Query)
	probes := v.Stats.Bisections - before
	if len(findings) != 1 || findings[0].Member != target {
		t.Fatalf("findings = %v", findings)
	}
	if probes >= n {
		t.Fatalf("bisection used %d probes for one offender in an n=%d tree", probes, n)
	}
	t.Logf("bisection: %d probes to localize 1 offender among %d members", probes, n)
}

// TestSwarmStatsAccounting: the verifier's counters track outcomes.
func TestSwarmStatsAccounting(t *testing.T) {
	mesh, v := newPair(t, 7, 2)
	req, resp := runRound(t, mesh, v)
	if err := v.Check(req, resp); err != nil {
		t.Fatal(err)
	}
	if v.Stats.Rounds != 1 || v.Stats.Accepted != 1 {
		t.Fatalf("stats after clean round: %+v", v.Stats)
	}
	mesh.Absent[5] = true
	req, resp = runRound(t, mesh, v)
	if err := v.Check(req, resp); err != ErrSwarmMissing {
		t.Fatal(err)
	}
	if v.Stats.Missing != 1 {
		t.Fatalf("missing not counted: %+v", v.Stats)
	}
}
