package swarm

import (
	"errors"
	"fmt"

	"proverattest/internal/core"
	"proverattest/internal/crypto/hmac"
	"proverattest/internal/crypto/sha1"
	"proverattest/internal/protocol"
)

// Verifier checks swarm aggregate responses by recomputing the expected
// aggregate from per-device verified state — golden memory digests
// (memoized once per device, request-independent) and expected monitor
// epochs — in one allocation-free pass over the subtree, then drives
// bisection down the tree when the aggregate disagrees.
type Verifier struct {
	topo  *core.Topology
	fleet int // fixed member-index space; survives Without rebuilds

	swarmKey [sha1.Size]byte
	macs     []*hmac.MAC           // per member, keyed K_Attest
	memDig   [][sha1.Size]byte     // memoized HMAC(K_i, "swarm-mem-v1" ‖ golden)
	epoch    []uint32              // expected monitor epoch per member

	treeID uint64
	nonce  uint64

	// Scratch, sized at construction so Check never allocates.
	aggs   [][sha1.Size]byte // expected aggregate per tree position
	own    [sha1.Size]byte
	signed []byte
	kidbuf []int

	Stats VerifierStats
}

// VerifierStats counts verifier-side outcomes and traffic.
type VerifierStats struct {
	Rounds     uint64 // aggregate checks performed
	Accepted   uint64
	Mismatches uint64 // aggregate tag disagreed
	Missing    uint64 // tag fine but members absent
	Bisections uint64 // bisection probes issued
}

// Static check errors — the reject paths are adversary-driven.
var (
	ErrSwarmUnsolicited = errors.New("swarm: response does not match the outstanding request")
	ErrSwarmBitmap      = errors.New("swarm: presence bitmap malformed or structurally invalid")
	ErrSwarmMismatch    = errors.New("swarm: aggregate tag mismatch")
	ErrSwarmMissing     = errors.New("swarm: aggregate verified but members are missing")
	ErrSwarmDepth       = errors.New("swarm: reported depth disagrees with present set")
)

// NewVerifier builds the verifier side of a swarm deployment. Expected
// epochs start at 1: members power up with the monitor dirty at epoch 0,
// so their first swarm round always performs a full measurement under
// epoch 1.
func NewVerifier(p Params) (*Verifier, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(p.IDs)
	sk := protocol.DeriveSwarmKey(p.Master)
	v := &Verifier{
		topo:     core.NewTopology(n, p.Fanout, p.Seed),
		fleet:    n,
		swarmKey: sk,
		macs:     make([]*hmac.MAC, n),
		memDig:   make([][sha1.Size]byte, n),
		epoch:    make([]uint32, n),
		aggs:     make([][sha1.Size]byte, n),
		signed:   make([]byte, 0, 32),
		kidbuf:   make([]int, 0, 16),
	}
	// Tree id binds fleet size, fanout and permutation seed — enough to
	// detect a topology-generation mismatch between coordinator restarts.
	v.treeID = uint64(n)<<40 ^ uint64(uint32(v.topo.Fanout()))<<32 ^ uint64(uint32(p.Seed))
	for i := range p.IDs {
		key := p.deviceKey(i)
		v.macs[i] = hmac.NewSHA1(key[:])
		protocol.SwarmMemDigestInto(v.macs[i], p.Golden, &v.memDig[i])
		v.epoch[i] = 1
	}
	return v, nil
}

// Topology exposes the verifier's current tree (read-only use).
func (v *Verifier) Topology() *core.Topology { return v.topo }

// TreeID is the topology-generation identifier stamped into requests.
func (v *Verifier) TreeID() uint64 { return v.treeID }

// SetEpoch records member's monitor epoch as observed by a direct 1:1
// full round — the resync contract after an epoch-desync mismatch.
func (v *Verifier) SetEpoch(member int, epoch uint32) {
	if member >= 0 && member < len(v.epoch) {
		v.epoch[member] = epoch
	}
}

// ExpectedEpoch reports the epoch the verifier currently requires of
// member's own tag.
func (v *Verifier) ExpectedEpoch(member int) uint32 {
	if member < 0 || member >= len(v.epoch) {
		return 0
	}
	return v.epoch[member]
}

// Remove drops a lost member: the tree is rebuilt with survivors in
// relative order (core.Topology.Without) and subsequent rounds expect the
// member's presence bit clear. The member-index space — and therefore the
// wire bitmap width — is unchanged.
func (v *Verifier) Remove(member int) {
	v.topo = v.topo.Without(member)
}

// NewRequest issues a signed aggregate request addressed at root's
// subtree (ownOnly for a bisection leaf probe). Nonces are strictly
// monotonic, so bisection probes stay fresh at every node.
func (v *Verifier) NewRequest(root int, ownOnly bool) *protocol.SwarmReq {
	v.nonce++
	req := &protocol.SwarmReq{
		OwnOnly: ownOnly,
		Root:    uint16(root),
		Nonce:   v.nonce,
		TreeID:  v.treeID,
	}
	req.Sign(v.swarmKey[:])
	return req
}

// Check verifies resp against req: the response must echo the request,
// the presence bitmap must be structurally valid (fleet-width, no bits
// outside the addressed subtree, no present member under an absent
// parent), and the aggregate tag must equal the expected aggregate
// recomputed from golden digests and expected epochs. Allocation-free
// after warm-up.
//
// A structurally valid round with every subtree member present but a
// wrong tag returns ErrSwarmMismatch; a valid tag over an incomplete
// present set returns ErrSwarmMissing (AppendMissing enumerates the
// absentees). Both are bisection triggers.
func (v *Verifier) Check(req *protocol.SwarmReq, resp *protocol.SwarmResp) error {
	v.Stats.Rounds++
	if resp.Nonce != req.Nonce || resp.Root != req.Root {
		return ErrSwarmUnsolicited
	}
	rootPos := v.topo.Pos(int(req.Root))
	if rootPos < 0 {
		return ErrSwarmUnsolicited
	}
	if len(resp.Bitmap) != protocol.SwarmBitmapLen(v.fleet) {
		return ErrSwarmBitmap
	}
	if !protocol.SwarmBit(resp.Bitmap, int(req.Root)) {
		// A response vouches for its sender at minimum.
		return ErrSwarmBitmap
	}

	// Structural pass over the presence bitmap: every set bit must be a
	// live member inside the addressed subtree whose ancestors up to the
	// root are also present (aggregation cannot skip a hop). Track the
	// deepest present member for the depth cross-check, and whether any
	// subtree member is absent.
	fanout := v.topo.Fanout()
	maxHops, missing := 0, false
	for m := 0; m < v.fleet; m++ {
		p := v.topo.Pos(m)
		inSubtree := false
		hops := 0
		if p >= 0 {
			q := p
			for q > rootPos {
				q = (q - 1) / fanout
				hops++
			}
			inSubtree = q == rootPos
		}
		if !protocol.SwarmBit(resp.Bitmap, m) {
			if inSubtree && !(req.OwnOnly && m != int(req.Root)) {
				missing = true
			}
			continue
		}
		if !inSubtree {
			return ErrSwarmBitmap
		}
		if req.OwnOnly && m != int(req.Root) {
			return ErrSwarmBitmap
		}
		if m != int(req.Root) {
			parent, _ := v.topo.Parent(m)
			if !protocol.SwarmBit(resp.Bitmap, parent) {
				return ErrSwarmBitmap
			}
		}
		if hops > maxHops {
			maxHops = hops
		}
	}

	// Expected aggregate: walk positions high→low within the subtree so
	// every child's expected aggregate exists before its parent folds it.
	v.signed = req.AppendSignedBytes(v.signed[:0])
	for p := v.topo.Len() - 1; p >= rootPos; p-- {
		m := v.topo.MemberAt(p)
		if !protocol.SwarmBit(resp.Bitmap, m) {
			continue
		}
		// In-subtree check (set bits outside already rejected above).
		q := p
		for q > rootPos {
			q = (q - 1) / fanout
		}
		if q != rootPos {
			continue
		}
		mac := v.macs[m]
		protocol.SwarmOwnTagInto(mac, v.signed, uint16(m), v.epoch[m], &v.memDig[m], &v.own)
		first := p*fanout + 1
		folded := 0
		for c := first; c < first+fanout && c < v.topo.Len(); c++ {
			if !protocol.SwarmBit(resp.Bitmap, v.topo.MemberAt(c)) {
				continue
			}
			if folded == 0 {
				protocol.SwarmFoldStart(mac, &v.own)
			}
			protocol.SwarmFoldChild(mac, &v.aggs[c])
			folded++
		}
		if folded == 0 {
			v.aggs[p] = v.own
		} else {
			protocol.SwarmFoldFinish(mac, &v.aggs[p])
		}
	}

	if !hmac.Equal(v.aggs[rootPos][:], resp.Aggregate[:]) {
		v.Stats.Mismatches++
		return ErrSwarmMismatch
	}
	if missing {
		v.Stats.Missing++
		return ErrSwarmMissing
	}
	if int(resp.Depth) != maxHops {
		// The depth field is advisory (it is not under any MAC), but an
		// inconsistency means the fold structure disagrees with the
		// presence set — worth a bisection look.
		return ErrSwarmDepth
	}
	v.Stats.Accepted++
	return nil
}

// AppendMissing appends the members of root's subtree whose presence bit
// is clear in resp to dst and returns the extended slice.
func (v *Verifier) AppendMissing(root int, resp *protocol.SwarmResp, dst []int) []int {
	rootPos := v.topo.Pos(root)
	if rootPos < 0 {
		return dst
	}
	fanout := v.topo.Fanout()
	for p := rootPos; p < v.topo.Len(); p++ {
		q := p
		for q > rootPos {
			q = (q - 1) / fanout
		}
		if q != rootPos {
			continue
		}
		if m := v.topo.MemberAt(p); !protocol.SwarmBit(resp.Bitmap, m) {
			dst = append(dst, m)
		}
	}
	return dst
}

// Cause classifies a localized finding.
type Cause int

const (
	// CauseAbsent: the member contributed no evidence (offline, or an
	// ancestor path failure isolated it).
	CauseAbsent Cause = iota
	// CauseMismatch: the member's own tag disagrees with the verifier's
	// expected state — modified memory or a desynced monitor epoch.
	CauseMismatch
	// CauseFoldForgery: the member's own tag verifies and every child
	// subtree verifies in isolation, yet the member's fold does not —
	// the node (or the transport at its hop) forged or corrupted child
	// aggregates.
	CauseFoldForgery
)

func (c Cause) String() string {
	switch c {
	case CauseAbsent:
		return "absent"
	case CauseMismatch:
		return "mismatch"
	case CauseFoldForgery:
		return "fold-forgery"
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// Finding is one localized swarm failure.
type Finding struct {
	Member int
	Cause  Cause
}

// QueryFunc delivers one bisection probe to the addressed subtree root
// and returns its response (nil response = no answer before timeout).
type QueryFunc func(*protocol.SwarmReq) (*protocol.SwarmResp, error)

// Localize drives bisection below root after a failed round: re-query
// the subtree, and on failure probe the root's own tag and recurse into
// each child subtree, attributing every divergence to a member. The
// probe count is Stats.Bisections; clean subtrees are never descended
// into, so localization costs O(fanout · depth) probes per offender
// instead of O(n).
func (v *Verifier) Localize(root int, query QueryFunc) []Finding {
	var out []Finding
	v.localize(root, query, &out)
	return out
}

func (v *Verifier) localize(root int, query QueryFunc, out *[]Finding) bool {
	req := v.NewRequest(root, false)
	v.Stats.Bisections++
	resp, err := query(req)
	if err != nil || resp == nil {
		// The whole subtree is silent: the root is unreachable; its
		// children cannot be reached through it either, so flag the root
		// and probe the children independently.
		*out = append(*out, Finding{Member: root, Cause: CauseAbsent})
		v.kidbuf = v.topo.Children(root, v.kidbuf[:0])
		for _, c := range append([]int(nil), v.kidbuf...) {
			v.localize(c, query, out)
		}
		return false
	}
	switch cerr := v.Check(req, resp); cerr {
	case nil:
		return true
	case ErrSwarmMissing:
		for _, m := range v.AppendMissing(root, resp, nil) {
			*out = append(*out, Finding{Member: m, Cause: CauseAbsent})
		}
		return false
	default:
		// Aggregate disagrees (or is structurally bogus): split the
		// subtree into the root's own contribution and each child
		// subtree, and recurse into whichever parts fail.
		ownBad := false
		oreq := v.NewRequest(root, true)
		v.Stats.Bisections++
		oresp, oerr := query(oreq)
		if oerr != nil || oresp == nil || v.Check(oreq, oresp) != nil {
			ownBad = true
			*out = append(*out, Finding{Member: root, Cause: CauseMismatch})
		}
		kidsClean := true
		v.kidbuf = v.topo.Children(root, v.kidbuf[:0])
		for _, c := range append([]int(nil), v.kidbuf...) {
			if !v.localize(c, query, out) {
				kidsClean = false
			}
		}
		if !ownBad && kidsClean {
			*out = append(*out, Finding{Member: root, Cause: CauseFoldForgery})
		}
		return false
	}
}
