package transport

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// sinkConn is a net.Conn that swallows writes and reports EOF on reads —
// the stub under the zero-allocation Send assertions, so no real socket
// (and no kernel-side jitter) is involved.
type sinkConn struct{}

func (sinkConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (sinkConn) Write(p []byte) (int, error)      { return len(p), nil }
func (sinkConn) Close() error                     { return nil }
func (sinkConn) LocalAddr() net.Addr              { return nil }
func (sinkConn) RemoteAddr() net.Addr             { return nil }
func (sinkConn) SetDeadline(time.Time) error      { return nil }
func (sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (sinkConn) SetWriteDeadline(time.Time) error { return nil }

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm up: first call may grow a scratch buffer
	if n := testing.AllocsPerRun(1000, fn); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

// TestSendZeroAllocs locks in the pooled write path: a steady-state frame
// write through a Conn builds the prefix+payload image in the connection's
// reused scratch and allocates nothing.
func TestSendZeroAllocs(t *testing.T) {
	c := NewConn(sinkConn{}, Options{})
	payload := bytes.Repeat([]byte{0xAB}, 64)
	assertZeroAllocs(t, "Conn.Send", func() {
		if err := c.Send(payload); err != nil {
			t.Fatal(err)
		}
	})
}

// TestWriteFrameZeroAllocs covers the standalone pooled WriteFrame.
func TestWriteFrameZeroAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0xCD}, 64)
	assertZeroAllocs(t, "WriteFrame", func() {
		if err := WriteFrame(io.Discard, payload, 0); err != nil {
			t.Fatal(err)
		}
	})
}

// TestReadFrameIntoZeroAllocs locks in the scratch-reuse read path,
// including the prefix read (a naive stack prefix would escape through the
// io.Reader interface and cost one allocation per frame).
func TestReadFrameIntoZeroAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0xEF}, 64)
	stream := AppendFrame(nil, payload)
	r := bytes.NewReader(stream)
	scratch := make([]byte, 0, 256)
	assertZeroAllocs(t, "ReadFrameInto", func() {
		r.Reset(stream)
		frame, err := ReadFrameInto(r, scratch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) != len(payload) {
			t.Fatalf("frame length %d, want %d", len(frame), len(payload))
		}
	})
}

// TestReadFrameIntoGrowsAndAliases pins the ownership contract: a frame
// larger than the scratch returns a freshly grown slice the caller adopts,
// and a following smaller frame reuses it in place.
func TestReadFrameIntoGrowsAndAliases(t *testing.T) {
	big := bytes.Repeat([]byte{1}, 512)
	small := []byte{2, 3, 4}
	stream := AppendFrame(AppendFrame(nil, big), small)
	r := bytes.NewReader(stream)

	scratch := make([]byte, 0, 8)
	frame, err := ReadFrameInto(r, scratch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != len(big) || cap(frame) < len(big) {
		t.Fatalf("grown frame len=%d cap=%d", len(frame), cap(frame))
	}
	adopted := frame
	frame, err = ReadFrameInto(r, adopted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, small) {
		t.Fatalf("second frame = %v, want %v", frame, small)
	}
	if &frame[0] != &adopted[0] {
		t.Fatal("second frame did not reuse the adopted scratch")
	}
}

// TestRecvSharedReusesBuffer pins Conn.RecvShared's aliasing contract over
// a real pipe: consecutive frames of equal size land in the same backing
// array, and the previous frame's contents are overwritten.
func TestRecvSharedReusesBuffer(t *testing.T) {
	a, b := Pipe(Options{ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second})
	defer a.Close()
	defer b.Close()

	go func() {
		a.Send([]byte("frame-one")) //nolint:errcheck
		a.Send([]byte("frame-two")) //nolint:errcheck
	}()
	f1, err := b.RecvShared()
	if err != nil {
		t.Fatal(err)
	}
	if string(f1) != "frame-one" {
		t.Fatalf("first frame = %q", f1)
	}
	p1 := &f1[0]
	f2, err := b.RecvShared()
	if err != nil {
		t.Fatal(err)
	}
	if string(f2) != "frame-two" {
		t.Fatalf("second frame = %q", f2)
	}
	if &f2[0] != p1 {
		t.Fatal("RecvShared did not reuse its buffer for the second frame")
	}
	if string(f1) != "frame-two" {
		t.Fatalf("aliasing contract: first slice now reads %q, want overwrite", f1)
	}
}
