package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame: the codec must never panic or over-allocate on malformed
// length prefixes, truncated frames or oversized frames, and any frame it
// accepts must re-encode to a prefix of the input (framing is a bijection
// on the accepted stream).
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, []byte{0x41, 0x52, 0x01}))
	f.Add(AppendFrame(nil, bytes.Repeat([]byte{0xEE}, 512)))
	f.Add([]byte{0, 0, 0, 0})                // zero length
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})    // absurd length
	f.Add([]byte{5, 0, 0, 0, 1, 2})          // truncated payload
	f.Add([]byte{1, 0})                      // truncated prefix
	f.Add(AppendFrame(nil, make([]byte, 1))) // minimal frame
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		r := bytes.NewReader(data)
		payload, err := ReadFrame(r, maxFrame)
		if err != nil {
			return
		}
		if len(payload) == 0 || len(payload) > maxFrame {
			t.Fatalf("accepted out-of-bounds payload length %d", len(payload))
		}
		reenc := AppendFrame(nil, payload)
		if !bytes.Equal(reenc, data[:len(reenc)]) {
			t.Fatalf("accepted frame does not round trip: % x", data)
		}
	})
}
