package transport

import (
	"errors"
	"io"

	"proverattest/internal/obs"
)

// Metrics is the frame codec's byte/frame/error accounting, recorded by a
// Conn on every Send/Recv when wired via Options.Metrics. All fields are
// obs instruments (atomics on preallocated state), so recording keeps the
// codec's zero-allocation contract; a nil *Metrics disables recording
// entirely. One Metrics may be shared by many Conns — the daemon wires a
// single set across every accepted connection, so the series aggregate
// fleet-wide traffic.
type Metrics struct {
	FramesIn  *obs.Counter // frames successfully read
	FramesOut *obs.Counter // frames successfully written
	BytesIn   *obs.Counter // wire bytes read (prefix + payload)
	BytesOut  *obs.Counter // wire bytes written (prefix + payload)

	ReadTimeouts  *obs.Counter // Recv deadline expiries (idle heartbeat ticks)
	ReadTooLarge  *obs.Counter // length prefix over MaxFrame
	ReadTruncated *obs.Counter // stream died mid-prefix or mid-payload
	ReadEmpty     *obs.Counter // zero-length frame
	ReadErrors    *obs.Counter // other read failures (net errors)
	WriteErrors   *obs.Counter // Send failures of any cause
}

// NewMetrics registers the codec's series on r (names prefixed
// transport_) and returns the recording handle. A nil registry yields a
// Metrics whose instruments are all no-ops, which a caller may still wire
// — or pass nil Metrics to skip even the nil-checks.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		FramesIn:      r.Counter("transport_frames_total", "Frames moved by the codec by direction.", obs.L("dir", "in")),
		FramesOut:     r.Counter("transport_frames_total", "Frames moved by the codec by direction.", obs.L("dir", "out")),
		BytesIn:       r.Counter("transport_bytes_total", "Wire bytes (length prefix + payload) by direction.", obs.L("dir", "in")),
		BytesOut:      r.Counter("transport_bytes_total", "Wire bytes (length prefix + payload) by direction.", obs.L("dir", "out")),
		ReadTimeouts:  r.Counter("transport_read_timeouts_total", "Recv deadline expiries (idle heartbeat ticks, not failures)."),
		ReadTooLarge:  r.Counter("transport_read_errors_total", "Frame read failures by cause.", obs.L("cause", "too_large")),
		ReadTruncated: r.Counter("transport_read_errors_total", "Frame read failures by cause.", obs.L("cause", "truncated")),
		ReadEmpty:     r.Counter("transport_read_errors_total", "Frame read failures by cause.", obs.L("cause", "empty")),
		ReadErrors:    r.Counter("transport_read_errors_total", "Frame read failures by cause.", obs.L("cause", "io")),
		WriteErrors:   r.Counter("transport_write_errors_total", "Frame write failures of any cause."),
	}
}

// recvDone records the outcome of one Recv. io.EOF is a clean shutdown
// between frames and counts as nothing.
func (m *Metrics) recvDone(frame []byte, err error) {
	if m == nil {
		return
	}
	if err == nil {
		m.FramesIn.Inc()
		m.BytesIn.Add(uint64(prefixSize + len(frame)))
		return
	}
	switch {
	case errors.Is(err, io.EOF):
	case IsTimeout(err):
		m.ReadTimeouts.Inc()
	case errors.Is(err, ErrFrameTooLarge):
		m.ReadTooLarge.Inc()
	case errors.Is(err, io.ErrUnexpectedEOF):
		m.ReadTruncated.Inc()
	case errors.Is(err, ErrEmptyFrame):
		m.ReadEmpty.Inc()
	default:
		m.ReadErrors.Inc()
	}
}

// sendDone records the outcome of one Send of n payload bytes.
func (m *Metrics) sendDone(n int, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.WriteErrors.Inc()
		return
	}
	m.FramesOut.Inc()
	m.BytesOut.Add(uint64(prefixSize + n))
}
