package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"proverattest/internal/obs"
)

// TestConnMetricsAccounting drives one frame each way over a pipe and a
// family of failure shapes, checking each lands on its distinct series.
func TestConnMetricsAccounting(t *testing.T) {
	reg := obs.New()
	m := NewMetrics(reg)
	a, b := Pipe(Options{ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second, Metrics: m})

	payload := []byte("four-byte-prefix-plus-me")
	sent := make(chan error, 1)
	go func() { sent <- a.Send(payload) }()
	got, err := b.RecvShared()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-sent; err != nil {
		t.Fatal(err)
	}
	wire := uint64(prefixSize + len(payload))
	if m.FramesOut.Load() != 1 || m.FramesIn.Load() != 1 {
		t.Fatalf("frames out=%d in=%d, want 1/1", m.FramesOut.Load(), m.FramesIn.Load())
	}
	if m.BytesOut.Load() != wire || m.BytesIn.Load() != wire {
		t.Fatalf("bytes out=%d in=%d, want %d", m.BytesOut.Load(), m.BytesIn.Load(), wire)
	}
	_ = got

	// Oversized send fails before touching the wire.
	big := bytes.Repeat([]byte{1}, int(DefaultMaxFrame)+1)
	if err := a.Send(big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized send: %v", err)
	}
	if m.WriteErrors.Load() != 1 {
		t.Fatalf("WriteErrors = %d, want 1", m.WriteErrors.Load())
	}

	// Close both ends: a clean EOF counts on no error series.
	a.Close()
	b.Close()
	if _, err := b.RecvShared(); err == nil {
		t.Fatal("recv on closed conn succeeded")
	}
}

func TestConnMetricsReadCauses(t *testing.T) {
	cases := []struct {
		name   string
		stream []byte
		opt    Options
		count  func(m *Metrics) uint64
	}{
		{
			name:   "too large",
			stream: []byte{0xFF, 0xFF, 0xFF, 0x7F},
			count:  func(m *Metrics) uint64 { return m.ReadTooLarge.Load() },
		},
		{
			name:   "truncated prefix",
			stream: []byte{0x10, 0x00},
			count:  func(m *Metrics) uint64 { return m.ReadTruncated.Load() },
		},
		{
			name:   "truncated payload",
			stream: []byte{0x10, 0x00, 0x00, 0x00, 0xAA},
			count:  func(m *Metrics) uint64 { return m.ReadTruncated.Load() },
		},
		{
			name:   "empty frame",
			stream: []byte{0x00, 0x00, 0x00, 0x00},
			count:  func(m *Metrics) uint64 { return m.ReadEmpty.Load() },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMetrics(obs.New())
			opt := tc.opt
			opt.Metrics = m
			c := NewConn(streamConn{bytes.NewReader(tc.stream)}, opt)
			if _, err := c.Recv(); err == nil {
				t.Fatal("malformed stream read succeeded")
			}
			if got := tc.count(m); got != 1 {
				t.Fatalf("cause counter = %d, want 1", got)
			}
			if m.FramesIn.Load() != 0 {
				t.Fatalf("FramesIn = %d, want 0", m.FramesIn.Load())
			}
		})
	}
}

// streamConn adapts a reader into a net.Conn for decode-failure tests.
type streamConn struct{ r io.Reader }

func (s streamConn) Read(p []byte) (int, error)     { return s.r.Read(p) }
func (streamConn) Write(p []byte) (int, error)      { return len(p), nil }
func (streamConn) Close() error                     { return nil }
func (streamConn) LocalAddr() net.Addr              { return nil }
func (streamConn) RemoteAddr() net.Addr             { return nil }
func (streamConn) SetDeadline(time.Time) error      { return nil }
func (streamConn) SetReadDeadline(time.Time) error  { return nil }
func (streamConn) SetWriteDeadline(time.Time) error { return nil }

// TestSendRecvMetricsZeroAllocs extends the codec's zero-allocation pins
// to the instrumented configuration: recording byte/frame counters on the
// steady-state paths must not add a single allocation.
func TestSendRecvMetricsZeroAllocs(t *testing.T) {
	m := NewMetrics(obs.New())
	c := NewConn(sinkConn{}, Options{Metrics: m})
	payload := bytes.Repeat([]byte{0xAB}, 64)
	assertZeroAllocs(t, "Conn.Send with metrics", func() {
		if err := c.Send(payload); err != nil {
			t.Fatal(err)
		}
	})

	stream := AppendFrame(nil, payload)
	r := bytes.NewReader(stream)
	rc := NewConn(streamConn{r}, Options{Metrics: m})
	assertZeroAllocs(t, "Conn.RecvShared with metrics", func() {
		r.Reset(stream)
		if _, err := rc.RecvShared(); err != nil {
			t.Fatal(err)
		}
	})
	if m.FramesOut.Load() == 0 || m.FramesIn.Load() == 0 {
		t.Fatal("metrics did not record during the alloc runs")
	}
}
