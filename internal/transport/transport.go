// Package transport carries protocol frames over real byte streams. It is
// the seam between the in-process simulation (internal/channel delivers
// whole frames on the event loop) and the networked deployment
// (internal/server and internal/agent exchange the same frames over
// net.Conn): a minimal length-prefixed codec with strict limits, plus a
// connection wrapper that applies read/write deadlines so a stalled or
// malicious peer cannot park a goroutine forever.
//
// Wire format: each frame is a 4-byte little-endian payload length
// followed by the payload bytes. The payload is a protocol frame
// (attestation request/response, service command/response, session hello,
// stats report) exactly as produced by internal/protocol's encoders — the
// codec adds framing only, so a frame captured on the socket is
// byte-identical to the frame the in-process channel would deliver.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

const (
	// prefixSize is the length-prefix width in bytes.
	prefixSize = 4

	// DefaultMaxFrame bounds a frame payload. It must admit the largest
	// legitimate protocol frame (a service command: 38-byte header +
	// 64 KiB body + 64-byte tag) with room to spare, while keeping a
	// malicious length prefix from provoking a large allocation.
	DefaultMaxFrame = 128 << 10
)

// Codec errors. ReadFrame's errors wrap these so callers can distinguish
// protocol abuse (close the connection) from clean shutdown (io.EOF).
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")
	ErrEmptyFrame    = errors.New("transport: zero-length frame")
)

// AppendFrame appends the encoded frame (prefix + payload) to dst and
// returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var prefix [prefixSize]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(payload)))
	dst = append(dst, prefix[:]...)
	return append(dst, payload...)
}

// WriteFrame writes one frame to w as a single Write call (so one frame
// maps to one segment on buffered transports and one synchronous transfer
// on net.Pipe).
func WriteFrame(w io.Writer, payload []byte, maxFrame uint32) error {
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(payload) == 0 {
		return ErrEmptyFrame
	}
	if uint32(len(payload)) > maxFrame {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(payload), maxFrame)
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, prefixSize+len(payload)), payload))
	return err
}

// ReadFrame reads one frame from r. The length prefix is validated against
// maxFrame before any payload allocation, so a hostile prefix cannot force
// a large allocation. A truncated prefix or payload yields
// io.ErrUnexpectedEOF (io.EOF only when the stream ends cleanly between
// frames).
func ReadFrame(r io.Reader, maxFrame uint32) ([]byte, error) {
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	var prefix [prefixSize]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("transport: truncated length prefix: %w", err)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if n == 0 {
		return nil, ErrEmptyFrame
	}
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("transport: truncated frame payload: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	return payload, nil
}

// Options configure a Conn.
type Options struct {
	// MaxFrame bounds payload size in both directions (0 = DefaultMaxFrame).
	MaxFrame uint32
	// ReadTimeout bounds one Recv call (0 = no deadline). A Recv that
	// times out returns a net.Error with Timeout() == true; the connection
	// stays usable, so callers can treat timeouts as idle ticks.
	ReadTimeout time.Duration
	// WriteTimeout bounds one Send call (0 = no deadline).
	WriteTimeout time.Duration
}

// Conn frames payloads over a net.Conn. Send and Recv are each safe for
// one concurrent caller (they serialise internally), mirroring net.Conn's
// one-reader/one-writer contract.
type Conn struct {
	nc  net.Conn
	opt Options

	rmu sync.Mutex
	br  *bufio.Reader

	wmu sync.Mutex
}

// NewConn wraps nc. The caller must not read from or write to nc directly
// afterwards.
func NewConn(nc net.Conn, opt Options) *Conn {
	if opt.MaxFrame == 0 {
		opt.MaxFrame = DefaultMaxFrame
	}
	return &Conn{nc: nc, opt: opt, br: bufio.NewReader(nc)}
}

// Pipe returns both ends of an in-memory, synchronous connection (net.Pipe)
// wrapped as frame connections — the deterministic loopback used by tests
// to exercise the exact socket code path without a network stack.
func Pipe(opt Options) (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a, opt), NewConn(b, opt)
}

// Send writes one frame, applying the write deadline.
func (c *Conn) Send(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.opt.WriteTimeout > 0 {
		if err := c.nc.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout)); err != nil {
			return err
		}
	}
	return WriteFrame(c.nc, payload, c.opt.MaxFrame)
}

// Recv reads one frame, applying the read deadline.
func (c *Conn) Recv() ([]byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.opt.ReadTimeout > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.opt.ReadTimeout)); err != nil {
			return nil, err
		}
	}
	return ReadFrame(c.br, c.opt.MaxFrame)
}

// Close closes the underlying connection, unblocking any pending Send or
// Recv.
func (c *Conn) Close() error { return c.nc.Close() }

// LocalAddr reports the underlying connection's local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr reports the underlying connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// IsTimeout reports whether err is a deadline expiry — an idle tick for
// loops that use ReadTimeout as a heartbeat interval.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
