// Package transport carries protocol frames over real byte streams. It is
// the seam between the in-process simulation (internal/channel delivers
// whole frames on the event loop) and the networked deployment
// (internal/server and internal/agent exchange the same frames over
// net.Conn): a minimal length-prefixed codec with strict limits, plus a
// connection wrapper that applies read/write deadlines so a stalled or
// malicious peer cannot park a goroutine forever.
//
// Wire format: each frame is a 4-byte little-endian payload length
// followed by the payload bytes. The payload is a protocol frame
// (attestation request/response, service command/response, session hello,
// stats report) exactly as produced by internal/protocol's encoders — the
// codec adds framing only, so a frame captured on the socket is
// byte-identical to the frame the in-process channel would deliver.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

const (
	// prefixSize is the length-prefix width in bytes.
	prefixSize = 4

	// DefaultMaxFrame bounds a frame payload. It must admit the largest
	// legitimate protocol frame (a service command: 38-byte header +
	// 64 KiB body + 64-byte tag) with room to spare, while keeping a
	// malicious length prefix from provoking a large allocation.
	DefaultMaxFrame = 128 << 10
)

// Codec errors. ReadFrame's errors wrap these so callers can distinguish
// protocol abuse (close the connection) from clean shutdown (io.EOF).
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")
	ErrEmptyFrame    = errors.New("transport: zero-length frame")
)

// AppendFrame appends the encoded frame (prefix + payload) to dst and
// returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var prefix [prefixSize]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(payload)))
	dst = append(dst, prefix[:]...)
	return append(dst, payload...)
}

// framePool recycles whole-frame scratch buffers for the standalone
// WriteFrame path. Pooling *[]byte (not []byte) keeps Put itself from
// allocating a slice-header box.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// WriteFrame writes one frame to w as a single Write call (so one frame
// maps to one segment on buffered transports and one synchronous transfer
// on net.Pipe). The prefix+payload image is assembled in a pooled scratch
// buffer, so steady-state writes do not allocate; payload is only read and
// never retained past the call.
func WriteFrame(w io.Writer, payload []byte, maxFrame uint32) error {
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(payload) == 0 {
		return ErrEmptyFrame
	}
	if uint32(len(payload)) > maxFrame {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(payload), maxFrame)
	}
	bp := framePool.Get().(*[]byte)
	buf := AppendFrame((*bp)[:0], payload)
	_, err := w.Write(buf)
	*bp = buf[:0]
	framePool.Put(bp)
	return err
}

// ReadFrame reads one frame from r, allocating a fresh payload the caller
// owns outright. Hot paths that can honour the aliasing contract should
// use ReadFrameInto (or Conn.RecvShared) instead.
func ReadFrame(r io.Reader, maxFrame uint32) ([]byte, error) {
	return ReadFrameInto(r, nil, maxFrame)
}

// ReadFrameInto reads one frame from r, reusing scratch's backing array
// for the payload when its capacity suffices (a larger frame allocates a
// bigger slice, which the caller should adopt as the next scratch). The
// length prefix is validated against maxFrame before any payload
// allocation, so a hostile prefix cannot force a large allocation. A
// truncated prefix or payload yields io.ErrUnexpectedEOF (io.EOF only when
// the stream ends cleanly between frames).
//
// Ownership: the returned slice aliases scratch; it is the caller's until
// the caller reuses scratch for the next frame. Anything that must outlive
// that point has to be copied out first.
func ReadFrameInto(r io.Reader, scratch []byte, maxFrame uint32) ([]byte, error) {
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	// Read the prefix through scratch when possible: a stack-local prefix
	// array would escape through the io.Reader interface and cost an
	// allocation per frame.
	var prefix []byte
	if cap(scratch) >= prefixSize {
		prefix = scratch[:prefixSize]
	} else {
		prefix = make([]byte, prefixSize)
	}
	if _, err := io.ReadFull(r, prefix); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("transport: truncated length prefix: %w", err)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(prefix)
	if n == 0 {
		return nil, ErrEmptyFrame
	}
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	var payload []byte
	if uint64(cap(scratch)) >= uint64(n) {
		payload = scratch[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("transport: truncated frame payload: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	return payload, nil
}

// Options configure a Conn.
type Options struct {
	// MaxFrame bounds payload size in both directions (0 = DefaultMaxFrame).
	MaxFrame uint32
	// ReadTimeout bounds one Recv call (0 = no deadline). A Recv that
	// times out returns a net.Error with Timeout() == true; the connection
	// stays usable, so callers can treat timeouts as idle ticks.
	ReadTimeout time.Duration
	// WriteTimeout bounds one Send call (0 = no deadline).
	WriteTimeout time.Duration
	// Metrics, when non-nil, receives per-frame byte and error accounting
	// (see NewMetrics). Recording is atomics-only, preserving the codec's
	// zero-allocation contract; the standalone ReadFrame/WriteFrame
	// helpers never record.
	Metrics *Metrics
}

// Conn frames payloads over a net.Conn. Send and Recv are each safe for
// one concurrent caller (they serialise internally), mirroring net.Conn's
// one-reader/one-writer contract.
type Conn struct {
	nc  net.Conn
	opt Options

	rmu  sync.Mutex
	br   *bufio.Reader
	rbuf []byte // RecvShared's reusable payload buffer (guarded by rmu)

	wmu  sync.Mutex
	wbuf []byte // Send's reusable prefix+payload image (guarded by wmu)
}

// NewConn wraps nc. The caller must not read from or write to nc directly
// afterwards.
func NewConn(nc net.Conn, opt Options) *Conn {
	if opt.MaxFrame == 0 {
		opt.MaxFrame = DefaultMaxFrame
	}
	return &Conn{nc: nc, opt: opt, br: bufio.NewReader(nc)}
}

// Pipe returns both ends of an in-memory, synchronous connection (net.Pipe)
// wrapped as frame connections — the deterministic loopback used by tests
// to exercise the exact socket code path without a network stack.
func Pipe(opt Options) (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a, opt), NewConn(b, opt)
}

// Send writes one frame, applying the write deadline. The prefix+payload
// image is assembled in a per-connection scratch buffer (still one Write
// call, so frame-per-segment behaviour is unchanged) and payload is never
// retained — the caller may reuse it immediately.
func (c *Conn) Send(payload []byte) error {
	err := c.send(payload)
	c.opt.Metrics.sendDone(len(payload), err)
	return err
}

func (c *Conn) send(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.opt.WriteTimeout > 0 {
		if err := c.nc.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout)); err != nil {
			return err
		}
	}
	if len(payload) == 0 {
		return ErrEmptyFrame
	}
	if uint32(len(payload)) > c.opt.MaxFrame {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(payload), c.opt.MaxFrame)
	}
	c.wbuf = AppendFrame(c.wbuf[:0], payload)
	_, err := c.nc.Write(c.wbuf)
	return err
}

// Recv reads one frame, applying the read deadline. The returned payload
// is freshly allocated and owned by the caller outright; loops that can
// honour the aliasing contract should prefer RecvShared.
func (c *Conn) Recv() ([]byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.recvLocked(nil)
}

// RecvShared reads one frame into the connection's reusable buffer. The
// returned slice is valid only until the next Recv or RecvShared call on
// this connection — a caller that retains the frame (or hands it to
// anything that might) must copy it first. This is the zero-allocation
// read path for per-frame serving loops.
func (c *Conn) RecvShared() ([]byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.rbuf == nil {
		c.rbuf = make([]byte, 0, 512)
	}
	frame, err := c.recvLocked(c.rbuf)
	if frame != nil {
		c.rbuf = frame // adopt any growth for the next frame
	}
	return frame, err
}

func (c *Conn) recvLocked(scratch []byte) ([]byte, error) {
	if c.opt.ReadTimeout > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.opt.ReadTimeout)); err != nil {
			return nil, err
		}
	}
	frame, err := ReadFrameInto(c.br, scratch, c.opt.MaxFrame)
	c.opt.Metrics.recvDone(frame, err)
	return frame, err
}

// SetReadTimeout replaces the per-Recv deadline for subsequent reads.
// It lets a server hold the first frame of a connection to a short
// hello deadline and then relax to the steady-state read timeout once
// the peer has proven it speaks the protocol. It must not be called
// concurrently with Recv or RecvShared (it serialises on the read lock,
// so a call made between reads is safe).
func (c *Conn) SetReadTimeout(d time.Duration) {
	c.rmu.Lock()
	c.opt.ReadTimeout = d
	c.rmu.Unlock()
}

// Close closes the underlying connection, unblocking any pending Send or
// Recv.
func (c *Conn) Close() error { return c.nc.Close() }

// LocalAddr reports the underlying connection's local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr reports the underlying connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// IsTimeout reports whether err is a deadline expiry — an idle tick for
// loops that use ReadTimeout as a heartbeat interval.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
