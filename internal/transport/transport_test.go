package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{0x41},
		[]byte("hello frames"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var stream bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&stream, p, 0); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&stream, 0)
		if err != nil {
			t.Fatalf("ReadFrame[%d]: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&stream, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("ReadFrame on drained stream: %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var stream bytes.Buffer
	// A hostile 1 GiB length prefix must be rejected before allocation.
	stream.Write([]byte{0x00, 0x00, 0x00, 0x40})
	if _, err := ReadFrame(&stream, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized prefix: %v, want ErrFrameTooLarge", err)
	}

	if err := WriteFrame(io.Discard, bytes.Repeat([]byte{1}, 32), 16); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsEmptyAndTruncated(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), 0); !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("zero-length frame: %v, want ErrEmptyFrame", err)
	}
	if err := WriteFrame(io.Discard, nil, 0); !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("zero-length write: %v, want ErrEmptyFrame", err)
	}
	// Truncated prefix.
	if _, err := ReadFrame(bytes.NewReader([]byte{5, 0}), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated prefix: %v, want io.ErrUnexpectedEOF", err)
	}
	// Prefix promises 8 bytes, stream holds 3.
	if _, err := ReadFrame(bytes.NewReader([]byte{8, 0, 0, 0, 1, 2, 3}), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestPipeConnExchange(t *testing.T) {
	a, b := Pipe(Options{})
	defer a.Close()
	defer b.Close()

	done := make(chan error, 1)
	go func() {
		frame, err := b.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- b.Send(append([]byte("echo:"), frame...))
	}()
	if err := a.Send([]byte("ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	reply, err := a.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(reply) != "echo:ping" {
		t.Fatalf("reply = %q", reply)
	}
	if err := <-done; err != nil {
		t.Fatalf("peer: %v", err)
	}
}

func TestRecvTimeoutIsIdleTick(t *testing.T) {
	a, b := Pipe(Options{ReadTimeout: 20 * time.Millisecond})
	defer a.Close()
	defer b.Close()

	_, err := a.Recv()
	if err == nil || !IsTimeout(err) {
		t.Fatalf("Recv on idle pipe: %v, want timeout", err)
	}

	// The connection must remain usable after a timeout.
	go func() { b.Send([]byte("late")) }() //nolint:errcheck
	deadline := time.Now().Add(2 * time.Second)
	for {
		frame, err := a.Recv()
		if err == nil {
			if string(frame) != "late" {
				t.Fatalf("frame = %q", frame)
			}
			return
		}
		if !IsTimeout(err) || time.Now().After(deadline) {
			t.Fatalf("Recv after timeout: %v", err)
		}
	}
}
